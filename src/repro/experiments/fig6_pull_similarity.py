"""Figure 6 — similarity of the interactive representation with the
original closeness/period/trend sub-series.

The paper's heatmaps are "mostly greater than zero", evidencing that
semantic pulling made z^S informative about every sub-series.  The
runner reproduces the three similarity matrices and reports the
fraction of positive entries per sub-series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis import cosine_similarity_matrix, spatial_signature
from repro.experiments.common import format_table, get_profile, prepare, train_muse

__all__ = ["Fig6Result", "run_fig6"]


@dataclass
class Fig6Result:
    """Similarity matrices of z^S vs each original sub-series.

    ``matrices`` holds the paper-style heatmaps (representation vs the
    sub-series in flow units over the shared spatial axis — the
    "mostly greater than zero" panels); ``centered_matrices`` are the
    batch-centered variants, a stricter probe of pattern agreement
    beyond the shared non-negative mean profile.
    """

    matrices: dict  # 'c'/'p'/'t' -> (N, N) similarity matrix
    centered_matrices: dict

    def positive_fraction(self, key):
        """Fraction of heatmap entries above zero (paper's claim)."""
        return float((self.matrices[key] > 0).mean())

    def mean_similarity(self, key):
        """Average similarity of the paper-style heatmap."""
        return float(self.matrices[key].mean())

    def centered_mean(self, key):
        """Average batch-centered similarity (stricter probe)."""
        return float(self.centered_matrices[key].mean())

    def __str__(self):
        rows = [
            (name, self.mean_similarity(key), self.positive_fraction(key),
             self.centered_mean(key))
            for key, name in (("c", "closeness"), ("p", "period"), ("t", "trend"))
        ]
        return format_table(
            ("Sub-series", "mean sim", "frac > 0", "centered"), rows,
            title="Fig. 6 interactive representation vs sub-series", precision=3,
        )


def run_fig6(profile="ci", dataset="nyc-bike", num_samples=32, seed=0):
    """Regenerate Fig. 6; returns a :class:`Fig6Result`."""
    prof = get_profile(profile)
    data = prepare(dataset, prof)
    trainer = train_muse(data, prof, seed=seed, gen_weight=1.0)
    batch = data.test.take(range(min(num_samples, len(data.test))))
    outputs = trainer.model.encode(batch)

    # Representations and raw sub-series live in different feature
    # spaces; compare them over the shared spatial axis.  The
    # paper-style heatmap uses the sub-series in flow units (both sides
    # non-negative, so positivity measures aligned spatial mass); the
    # centered variant subtracts each cell's batch mean for a stricter
    # pattern-agreement probe.
    interactive = spatial_signature(outputs.representations["s"].data)
    interactive_centered = interactive - interactive.mean(axis=0, keepdims=True)

    matrices, centered = {}, {}
    for key, series in (("c", batch.closeness), ("p", batch.period),
                        ("t", batch.trend)):
        raw = spatial_signature(data.scaler.inverse_transform(series))
        matrices[key] = cosine_similarity_matrix(interactive, raw)
        sig = spatial_signature(series)
        sig = sig - sig.mean(axis=0, keepdims=True)
        centered[key] = cosine_similarity_matrix(interactive_centered, sig)
    return Fig6Result(matrices=matrices, centered_matrices=centered)


if __name__ == "__main__":
    print(run_fig6())
