"""Figure 5 — t-SNE of original vs disentangled representations.

Trains MUSE-Net, embeds (a) the raw closeness/period/trend sub-series
and (b) the learned exclusive + interactive representations with t-SNE,
and scores cluster separation with the silhouette coefficient.  The
paper's qualitative claim becomes quantitative: raw sub-series mix
(silhouette near zero) while disentangled representations separate
(clearly positive silhouette).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis import flatten_per_sample, silhouette_score, tsne
from repro.experiments.common import get_profile, prepare, train_muse

__all__ = ["Fig5Result", "run_fig5"]


@dataclass
class Fig5Result:
    """Embeddings + labels + silhouette scores for both panels."""

    original_embedding: np.ndarray
    original_labels: np.ndarray
    disentangled_embedding: np.ndarray
    disentangled_labels: np.ndarray
    original_silhouette: float
    disentangled_silhouette: float

    @property
    def separation_improved(self):
        """The figure's takeaway: disentangled clusters separate more."""
        return self.disentangled_silhouette > self.original_silhouette

    def __str__(self):
        return (
            "Fig. 5 cluster separation (silhouette): "
            f"original sub-series {self.original_silhouette:.3f}  vs  "
            f"disentangled representations {self.disentangled_silhouette:.3f}"
            f"  ->  {'separates' if self.separation_improved else 'DOES NOT separate'}"
        )


def run_fig5(profile="ci", dataset="nyc-bike", num_samples=40, seed=0,
             tsne_iterations=200):
    """Regenerate Fig. 5; returns a :class:`Fig5Result`."""
    prof = get_profile(profile)
    data = prepare(dataset, prof)
    trainer = train_muse(data, prof, seed=seed, gen_weight=1.0)
    model = trainer.model

    batch = data.test.take(range(min(num_samples, len(data.test))))
    outputs = model.encode(batch)

    # Panel (a): the raw sub-series, flattened per sample.  Sub-series
    # have different lengths, so embed each group's own features after
    # reducing to a common dimension via per-frame averaging.
    def per_frame_mean(series):
        return np.asarray(series).mean(axis=1).reshape(len(series), -1)

    original = np.concatenate([
        per_frame_mean(batch.closeness),
        per_frame_mean(batch.period),
        per_frame_mean(batch.trend),
    ])
    original_labels = np.repeat(np.arange(3), len(batch))

    reps = outputs.representations
    disentangled = np.concatenate([
        flatten_per_sample(reps[key].data) for key in ("c", "p", "t", "s")
    ])
    disentangled_labels = np.repeat(np.arange(4), len(batch))

    original_embedding = tsne(original, iterations=tsne_iterations, seed=seed)
    disentangled_embedding = tsne(disentangled, iterations=tsne_iterations, seed=seed)

    return Fig5Result(
        original_embedding=original_embedding,
        original_labels=original_labels,
        disentangled_embedding=disentangled_embedding,
        disentangled_labels=disentangled_labels,
        original_silhouette=silhouette_score(original_embedding, original_labels),
        disentangled_silhouette=silhouette_score(disentangled_embedding,
                                                 disentangled_labels),
    )


if __name__ == "__main__":
    print(run_fig5())
