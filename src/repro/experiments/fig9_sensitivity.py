"""Figure 9 — hyper-parameter sensitivity of MUSE-Net.

Sweeps the three hyper-parameters the paper studies on NYC-Bike:

- (a) the balance coefficient ``lambda`` (candidate set 1e-3..1e3),
- (b) the sampled distribution dimension ``k`` (16..1024),
- (c) the representation dimension ``d`` (16..320),

reporting test RMSE per value (mean over repeats).  Expected shape:
a sweet spot around ``lambda = 1`` with degradation/instability at the
extremes, and flat curves over wide ranges of ``k`` and ``d``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.common import format_table, get_profile, prepare, train_muse

__all__ = ["Fig9Result", "run_fig9", "PAPER_SWEEPS", "CI_SWEEPS"]

PAPER_SWEEPS = {
    "lambda": (1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3),
    "k": (16, 32, 64, 128, 256, 512, 1024),
    "d": (16, 32, 64, 128, 256, 320),
}

# CPU-budget sweeps: same spirit, fewer points, small capacities.
CI_SWEEPS = {
    "lambda": (1e-2, 1.0, 1e2),
    "k": (8, 16, 32),
    "d": (4, 8, 16),
}


@dataclass
class Fig9Result:
    """curves[param] -> list of (value, mean_rmse, std_rmse)."""

    profile: str
    curves: dict = field(default_factory=dict)

    def best_value(self, param):
        """The sweep value with the lowest mean RMSE."""
        return min(self.curves[param], key=lambda entry: entry[1])[0]

    def __str__(self):
        pieces = []
        for param, entries in self.curves.items():
            rows = [(value, mean, std) for value, mean, std in entries]
            pieces.append(format_table(
                (param, "RMSE mean", "RMSE std"), rows,
                title=f"Fig. 9 sensitivity: {param} ({self.profile})", precision=3,
            ))
        return "\n\n".join(pieces)


def run_fig9(profile="ci", dataset="nyc-bike", sweeps=None, repeats=1, seed=0):
    """Regenerate Fig. 9's three sweeps; returns a :class:`Fig9Result`.

    ``repeats`` averages over seeds (the paper uses 10; CI uses 1).
    """
    prof = get_profile(profile)
    sweeps = sweeps if sweeps is not None else (
        CI_SWEEPS if prof.name == "ci" else PAPER_SWEEPS
    )
    data = prepare(dataset, prof)

    def rmse_for(**overrides):
        values = []
        for repeat in range(repeats):
            trainer = train_muse(data, prof, seed=seed + repeat, **overrides)
            report = trainer.evaluate(data)
            values.append(0.5 * (report.outflow_rmse + report.inflow_rmse))
        return float(np.mean(values)), float(np.std(values))

    result = Fig9Result(profile=prof.name)
    if "lambda" in sweeps:
        result.curves["lambda"] = [
            (value,) + rmse_for(lam=value) for value in sweeps["lambda"]
        ]
    if "k" in sweeps:
        result.curves["k"] = [
            (value,) + rmse_for(latent_interactive=int(value))
            for value in sweeps["k"]
        ]
    if "d" in sweeps:
        result.curves["d"] = [
            (value,) + rmse_for(rep_channels=int(value)) for value in sweeps["d"]
        ]
    return result


if __name__ == "__main__":
    print(run_fig9())
