"""Table V — weekday vs weekend one-step performance.

Same protocol as Table IV with the split on day-of-week (Mon-Fri vs
Sat-Sun).  Expected shape: MUSE-Net leads on both halves; weekend
errors are relatively higher for every method (less regular traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data import weekday_mask, weekend_mask
from repro.experiments.common import (
    format_table,
    get_profile,
    prepare,
    train_baseline,
    train_muse,
)
from repro.experiments.table3_multistep import MULTISTEP_METHODS

__all__ = ["Table5Result", "run_table5"]


@dataclass
class Table5Result:
    """reports[dataset][method] -> {"weekday": ..., "weekend": ...}."""

    profile: str
    reports: dict = field(default_factory=dict)

    def rows(self, dataset):
        rows = []
        for method, halves in self.reports[dataset].items():
            wd, we = halves["weekday"], halves["weekend"]
            rows.append((
                method,
                wd.outflow_rmse, wd.outflow_mape, wd.inflow_rmse, wd.inflow_mape,
                we.outflow_rmse, we.outflow_mape, we.inflow_rmse, we.inflow_mape,
            ))
        return rows

    def __str__(self):
        headers = ("Method",
                   "wd out RMSE", "wd out MAPE", "wd in RMSE", "wd in MAPE",
                   "we out RMSE", "we out MAPE", "we in RMSE", "we in MAPE")
        return "\n\n".join(
            format_table(headers, self.rows(dataset),
                         title=f"Table V [{dataset}] ({self.profile})")
            for dataset in self.reports
        )


def run_table5(profile="ci", datasets=None, methods=None, seed=0):
    """Regenerate Table V; returns a :class:`Table5Result`."""
    prof = get_profile(profile)
    datasets = datasets if datasets is not None else prof.datasets[:1]
    methods = tuple(methods) if methods is not None else MULTISTEP_METHODS

    result = Table5Result(profile=prof.name)
    for dataset_name in datasets:
        data = prepare(dataset_name, prof)
        weekday = weekday_mask(data.grid, data.test.indices)
        weekend = weekend_mask(data.grid, data.test.indices)
        table = {}
        for method in methods:
            if method == "MUSE-Net":
                trainer = train_muse(data, prof, seed=seed)
            else:
                trainer = train_baseline(method, data, prof, seed=seed)
            table[method] = {
                "weekday": trainer.evaluate(data, sample_mask=weekday),
                "weekend": trainer.evaluate(data, sample_mask=weekend),
            }
        result.reports[dataset_name] = table
    return result


if __name__ == "__main__":
    print(run_table5())
