"""Dataset diagnostics report.

Summarizes whether a dataset carries the structure MUSE-Net assumes:
volume statistics, daily/weekly periodicity strength, peak/off-peak
contrast, and weekday/weekend contrast — with terminal charts.  Used
from the CLI (``python -m repro report nyc-bike``) and by tests to
validate the synthetic substrate against the real datasets' known
properties.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis import periodicity_strength
from repro.data import load_dataset
from repro.data.datasets import TrafficDataset
from repro.experiments.common import format_table
from repro.viz import heatmap, sparkline

__all__ = ["DatasetReport", "build_dataset_report"]


@dataclass
class DatasetReport:
    """Computed diagnostics for one dataset."""

    summary: str
    daily_strength: float
    weekly_strength: float
    peak_ratio: float  # mean peak volume / mean off-peak volume
    weekend_ratio: float  # weekend volume / weekday volume
    daily_profile: np.ndarray  # mean citywide volume per time-of-day
    spatial_mean: np.ndarray  # (H, W) mean flow map

    def has_multiperiodic_structure(self):
        """The precondition for the paper's method to apply."""
        return self.daily_strength > 0.3 and self.peak_ratio > 1.2

    def __str__(self):
        rows = [
            ("daily periodicity strength", self.daily_strength),
            ("weekly periodicity strength", self.weekly_strength),
            ("peak / off-peak volume", self.peak_ratio),
            ("weekend / weekday volume", self.weekend_ratio),
        ]
        table = format_table(("diagnostic", "value"), rows,
                             title=self.summary, precision=3)
        return "\n".join([
            table,
            f"daily profile : {sparkline(self.daily_profile)}",
            "mean flow map :",
            heatmap(self.spatial_mean),
        ])


def build_dataset_report(dataset, peak_hours=((7, 9), (17, 19))):
    """Compute a :class:`DatasetReport` for a dataset (or its name)."""
    if not isinstance(dataset, TrafficDataset):
        dataset = load_dataset(dataset, scale="tiny")
    grid = dataset.grid
    flows = dataset.flows
    citywide = flows.sum(axis=(1, 2, 3))
    f = grid.samples_per_day
    indices = np.arange(len(flows))
    hours = grid.hour_of_day(indices)
    weekend = grid.is_weekend(indices)

    peak = np.zeros(len(flows), dtype=bool)
    for start, stop in peak_hours:
        peak |= (hours >= start) & (hours < stop)
    peak &= ~weekend

    daily_profile = np.array([
        citywide[indices % f == phase].mean() for phase in range(f)
    ], dtype=np.float64)
    off_peak = ~peak & ~weekend
    peak_ratio = citywide[peak].mean() / max(citywide[off_peak].mean(), 1e-9)
    weekend_ratio = citywide[weekend].mean() / max(citywide[~weekend].mean(), 1e-9)

    weekly = 0.0
    if len(citywide) >= 2 * grid.samples_per_week:
        weekly = periodicity_strength(citywide, grid.samples_per_week)

    return DatasetReport(
        summary=dataset.summary(),
        daily_strength=periodicity_strength(citywide, f),
        weekly_strength=weekly,
        peak_ratio=float(peak_ratio),
        weekend_ratio=float(weekend_ratio),
        daily_profile=daily_profile,
        spatial_mean=flows.mean(axis=(0, 1)),
    )


if __name__ == "__main__":
    import sys

    name = sys.argv[1] if len(sys.argv) > 1 else "nyc-bike"
    print(build_dataset_report(name))
