"""Table III — multi-step forecasting over 3 horizons.

The paper compares the four multi-periodic methods (ST-GSP, DeepSTN+,
ST-SSL, MUSE-Net) at horizons 1-3: each horizon has its own per-horizon
multi-periodic samples (closeness fixed at the last observed window,
period/trend lags aligned to the target).  Expected shape: MUSE-Net
leads at every horizon, and everyone degrades by horizon 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    format_table,
    get_profile,
    prepare,
    train_baseline,
    train_muse,
)

__all__ = ["Table3Result", "run_table3", "MULTISTEP_METHODS"]

MULTISTEP_METHODS = ("STGSP", "DeepSTN+", "ST-SSL", "MUSE-Net")


@dataclass
class Table3Result:
    """reports[dataset][horizon][method] -> EvalReport."""

    profile: str
    reports: dict = field(default_factory=dict)

    def rows(self, dataset, horizon):
        return [
            (method,) + report.row()
            for method, report in self.reports[dataset][horizon].items()
        ]

    def __str__(self):
        pieces = []
        for dataset, horizons in self.reports.items():
            for horizon in horizons:
                pieces.append(format_table(
                    ("Method", "out RMSE", "out MAE", "out MAPE",
                     "in RMSE", "in MAE", "in MAPE"),
                    self.rows(dataset, horizon),
                    title=f"Table III [{dataset}] horizon {horizon} ({self.profile})",
                ))
        return "\n\n".join(pieces)


def run_table3(profile="ci", datasets=None, horizons=(1, 2, 3), methods=None,
               seed=0):
    """Regenerate Table III; returns a :class:`Table3Result`."""
    prof = get_profile(profile)
    datasets = datasets if datasets is not None else prof.datasets[:1]
    methods = tuple(methods) if methods is not None else MULTISTEP_METHODS

    result = Table3Result(profile=prof.name)
    for dataset_name in datasets:
        result.reports[dataset_name] = {}
        for horizon in horizons:
            data = prepare(dataset_name, prof, horizon=horizon)
            table = {}
            for method in methods:
                if method == "MUSE-Net":
                    trainer = train_muse(data, prof, seed=seed)
                else:
                    trainer = train_baseline(method, data, prof, seed=seed)
                table[method] = trainer.evaluate(data)
            result.reports[dataset_name][horizon] = table
    return result


if __name__ == "__main__":
    print(run_table3())
