"""AbstractTensor mechanics and the interval transfer functions."""

import math

import numpy as np

from repro.core.model import MuseConfig
from repro.inspect import AbstractTensor, Interval, abstract_batch
from repro.inspect.abstract import buffer_address
from repro.inspect.intervals import TOP, propagate
from repro.tensor import Tensor


class TestAbstractTensor:
    def test_shape_and_dtype_without_materializing(self):
        at = AbstractTensor((4, 2, 10, 20), dtype=np.float32)
        assert at.data.shape == (4, 2, 10, 20)
        assert at.data.dtype == np.float32
        # Zero-stride broadcast view: one scalar backs the whole array.
        assert at.data.strides == (0, 0, 0, 0)
        assert at.data.base is not None

    def test_tensor_wrap_preserves_the_view(self):
        # Tensor.__init__ uses np.asarray, so the zero-stride view (and
        # with it the shared buffer address) survives wrapping — that
        # address is how the tracer recognizes input leaves.
        at = AbstractTensor((3, 5))
        wrapped = Tensor(at.data)
        assert buffer_address(wrapped.data) == buffer_address(at.data)

    def test_distinct_abstract_tensors_have_distinct_buffers(self):
        a = AbstractTensor((2, 2))
        b = AbstractTensor((2, 2))
        assert buffer_address(a.data) != buffer_address(b.data)

    def test_abstract_batch_matches_config_geometry(self):
        config = MuseConfig()
        batch = abstract_batch(config, dtype=np.float32)
        assert batch.closeness.shape == (
            1, config.len_closeness, config.flow_channels,
            config.height, config.width)
        assert batch.period.shape[1] == config.len_period
        assert batch.trend.shape[1] == config.len_trend
        assert batch.target.shape == (
            1, config.flow_channels, config.height, config.width)
        assert batch.closeness.dtype == np.float32


class TestIntervalPredicates:
    def test_open_bound_positivity(self):
        # (0, inf) is strictly positive; [0, inf) is not.
        assert Interval(0.0, math.inf, lo_open=True).is_positive
        assert not Interval(0.0, math.inf).is_positive
        assert Interval(0.0, math.inf).is_nonnegative

    def test_contains_zero_respects_openness(self):
        assert Interval(-1.0, 1.0).contains_zero
        assert Interval(0.0, 1.0).contains_zero
        assert not Interval(0.0, 1.0, lo_open=True).contains_zero
        assert not Interval(1e-6, 1.0).contains_zero


class TestTransferFunctions:
    def test_exp_is_strictly_positive(self):
        out = propagate("exp", [TOP])
        assert out.is_positive
        assert out.lo == 0.0 and out.lo_open

    def test_sum_preserves_strict_positivity(self):
        positive = propagate("exp", [TOP])
        assert propagate("sum", [positive]).is_positive

    def test_square_via_same_parent_mul(self):
        out = propagate("mul", [TOP, TOP], same_parent=True)
        assert out.is_nonnegative

    def test_mul_of_independent_unbounded_is_top(self):
        out = propagate("mul", [TOP, TOP], same_parent=False)
        assert out.can_be_negative

    def test_relu_clamps_at_zero(self):
        out = propagate("relu", [Interval(-5.0, 3.0)])
        assert out.lo == 0.0 and out.hi == 3.0

    def test_add_shifts_bounds(self):
        out = propagate("add", [Interval(0.0, 2.0), Interval(1e-5, 1e-5)])
        assert out.is_positive

    def test_div_by_positive_stays_finite_logic(self):
        num = Interval(0.0, 1.0)
        den = Interval(1e-5, math.inf)
        assert not den.contains_zero
        out = propagate("div", [num, den])
        assert out.is_nonnegative

    def test_reciprocal_of_positive_never_attains_zero(self):
        out = propagate("div", [Interval(1.0, 1.0),
                                Interval(0.0, math.inf, lo_open=True)])
        assert out.is_positive  # lo must be open at 0

    def test_eps_guard_pattern_proves_std_chain_safe(self):
        # The ST-Norm chain: x^2 -> sum -> +eps -> sqrt -> divide.
        squared = propagate("mul", [TOP, TOP], same_parent=True)
        summed = propagate("sum", [squared])
        guarded = propagate("add", [summed, Interval(1e-5, 1e-5)])
        root = propagate("sqrt", [guarded])
        assert guarded.is_positive
        assert root.is_positive
        assert not root.contains_zero

    def test_unknown_op_falls_back_to_top(self):
        out = propagate("no_such_op", [Interval(1.0, 2.0)])
        assert out is TOP

    def test_sigmoid_and_tanh_are_bounded(self):
        sig = propagate("sigmoid", [TOP])
        assert sig.lo >= 0.0 and sig.hi <= 1.0
        th = propagate("tanh", [TOP])
        assert th.lo >= -1.0 and th.hi <= 1.0

    def test_abs_and_sqrt(self):
        out = propagate("abs", [Interval(-3.0, 2.0)])
        assert out.lo == 0.0 and out.hi == 3.0
        root = propagate("sqrt", [Interval(4.0, 9.0)])
        assert root.lo == 2.0 and root.hi == 3.0
