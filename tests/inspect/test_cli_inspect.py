"""`repro check-model` / `repro lint` exit contract and output formats.

Exit codes (shared with the rest of the CLI): 0 clean, 2 findings or a
bad method/config, 1 internal error.
"""

import json

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_check_model_defaults(self):
        args = build_parser().parse_args(["check-model"])
        assert args.method == []
        assert args.dtype == "float32"
        assert args.format == "text"

    def test_check_model_accepts_methods_and_json(self):
        args = build_parser().parse_args(
            ["check-model", "MUSE-Net", "RNN", "--format", "json",
             "--dtype", "float64"])
        assert args.method == ["MUSE-Net", "RNN"]
        assert args.dtype == "float64"

    def test_lint_accepts_paths(self):
        args = build_parser().parse_args(["lint", "src/repro/tensor"])
        assert args.path == ["src/repro/tensor"]


class TestCheckModelCommand:
    def test_clean_method_exits_zero(self, capsys):
        assert main(["check-model", "RNN"]) == 0
        out = capsys.readouterr().out
        assert "check-model: RNN" in out
        assert "findings: none" in out

    def test_unknown_method_exits_two(self, capsys):
        assert main(["check-model", "ARIMA"]) == 2
        assert "unknown method" in capsys.readouterr().err

    def test_json_format_is_machine_readable(self, capsys):
        assert main(["check-model", "RNN", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1
        assert payload[0]["model"] == "RNN"
        assert payload[0]["ok"] is True
        assert payload[0]["totals"]["params"] > 0

    def test_findings_exit_two(self, capsys, monkeypatch):
        from repro.inspect.checker import Finding, ModelReport

        def fake_check(method, dtype):
            return ModelReport(model=method, findings=[Finding(
                rule="dead-parameter", message="stub", module="m")])

        monkeypatch.setattr("repro.inspect.check_method", fake_check)
        assert main(["check-model", "RNN"]) == 2
        assert "dead-parameter" in capsys.readouterr().out

    def test_internal_error_exits_one(self, capsys, monkeypatch):
        def boom(method, dtype):
            raise RuntimeError("tracer exploded")

        monkeypatch.setattr("repro.inspect.check_method", boom)
        assert main(["check-model", "RNN"]) == 1
        assert "tracer exploded" in capsys.readouterr().err


class TestLintCommand:
    def test_repo_default_paths_exit_zero(self, capsys):
        # PR-head gate: the committed tree lints clean.
        assert main(["lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "tensor"
        bad.mkdir(parents=True)
        target = bad / "dirty.py"
        target.write_text("import numpy as np\nx = np.zeros(3)\n")
        # Paths outside the repo root still lint; the dtype-policy rule
        # keys off the *relative* path so this one is out of scope —
        # use mutable-default, which applies everywhere.
        target.write_text("def f(xs=[]):\n    return xs\n")
        assert main(["lint", str(target)]) == 2
        assert "mutable-default" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["files_checked"] > 100

    def test_internal_error_exits_one(self, capsys, monkeypatch):
        def boom(paths, root, config=None):
            raise RuntimeError("walker exploded")

        monkeypatch.setattr("repro.inspect.lint_paths", boom)
        assert main(["lint"]) == 1
        assert "walker exploded" in capsys.readouterr().err
