"""MUSE-Net and every baseline pass the static checker at paper shapes.

This is satellite 4's acceptance test: ``check_method`` builds each
model under the float32 policy at the paper geometry (10x20 grid,
L=(3,4,4)) and traces a full ``training_loss``, so any shape bug,
float64 leak, unreachable parameter, or unguarded numeric hazard in
the production models fails here with its module path.
"""

import time

import numpy as np
import pytest

from repro.baselines import BASELINE_NAMES
from repro.inspect import check_method

METHODS = ("MUSE-Net",) + tuple(BASELINE_NAMES)


@pytest.mark.parametrize("method", METHODS)
def test_method_checks_clean_at_paper_shapes(method):
    report = check_method(method)
    assert report.ok, "\n" + report.format_text()
    assert report.num_ops > 0
    assert report.total_params > 0


def test_muse_net_check_is_fast():
    # Acceptance bound: a full build + check in under two seconds.  The
    # in-process cost is ~0.4s (construction dominates); the bound
    # leaves headroom for slow CI machines.
    start = time.perf_counter()
    report = check_method("MUSE-Net")
    elapsed = time.perf_counter() - start
    assert report.ok
    assert elapsed < 2.0, f"check-model took {elapsed:.2f}s"


def test_muse_net_report_matches_known_architecture():
    report = check_method("MUSE-Net")
    # Params must agree with analysis.complexity (the checker
    # cross-checks internally and emits cost-mismatch otherwise).
    assert report.total_params == 47_292_586
    buckets = {c.module for c in report.costs}
    assert {"stem_c", "stem_p", "stem_t"} <= buckets


def test_unknown_method_raises_value_error():
    with pytest.raises(ValueError, match="unknown method"):
        check_method("NOT-A-MODEL")


def test_float64_build_also_checks_clean():
    # The checker follows the model's own dtype: a float64 build has no
    # float32 operands anywhere, so the upcast rule must stay silent.
    report = check_method("RNN", dtype=np.float64)
    assert report.ok, "\n" + report.format_text()
