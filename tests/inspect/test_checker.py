"""Each checker rule fires on a fixture model built to trigger exactly it.

Every fixture subclasses :class:`BaselineForecaster` at a tiny geometry
so a full ``training_loss`` trace runs in milliseconds.  The companion
assertion in each test is as important as the trigger: the *other*
rules must stay quiet, and module attribution must name the offending
submodule.
"""

import numpy as np
import pytest

from repro.baselines.base import BaselineConfig, BaselineForecaster
from repro.inspect import check_model
from repro.nn import Linear
from repro.tensor import Tensor, default_dtype, relu

CONFIG = BaselineConfig(len_closeness=2, len_period=1, len_trend=1,
                        height=2, width=3, hidden=4)
FEATURES = CONFIG.frame_features  # 2 * 2 * 3 = 12


class _TinyForecaster(BaselineForecaster):
    """Clean single-Linear forecaster the fixtures perturb."""

    def __init__(self, config=CONFIG):
        super().__init__(config)
        self.head = Linear(FEATURES, FEATURES)

    def _pooled(self, closeness, period, trend):
        frames = self._frames_flat((closeness, period, trend))
        return frames.mean(axis=1)  # (N, features)

    def forward(self, closeness, period, trend):
        pred = self.head(self._pooled(closeness, period, trend))
        return self._to_grid(pred.reshape((-1, self.config.num_regions,
                                           self.config.flow_channels)))


def _check(model_cls):
    with default_dtype(np.float32):
        model = model_cls()
    return check_model(model, CONFIG)


def _rules(report):
    return sorted({f.rule for f in report.findings})


class TestCleanBaseline:
    def test_tiny_forecaster_is_clean(self):
        report = _check(_TinyForecaster)
        assert report.ok, [str(f) for f in report.findings]
        assert report.num_ops > 0
        assert report.total_params == FEATURES * FEATURES + FEATURES

    def test_costs_cross_check_complexity_module(self):
        report = _check(_TinyForecaster)
        assert sum(c.params for c in report.costs) == report.total_params
        assert report.total_flops > 0
        assert report.total_tape_bytes > 0


class TestShapeError:
    class _BadShape(_TinyForecaster):
        def __init__(self):
            super().__init__()
            self.bad = Linear(FEATURES + 1, FEATURES)

        def forward(self, closeness, period, trend):
            pred = self.bad(self._pooled(closeness, period, trend))
            return self._to_grid(pred.reshape(
                (-1, self.config.num_regions, self.config.flow_channels)))

    def test_mismatched_linear_reports_shape_error(self):
        report = _check(self._BadShape)
        shape_findings = [f for f in report.findings
                         if f.rule == "shape-error"]
        assert len(shape_findings) == 1
        assert shape_findings[0].module == "bad"

    def test_no_graph_analyses_on_a_broken_trace(self):
        report = _check(self._BadShape)
        assert "numeric-hazard" not in _rules(report)
        assert "dtype-upcast" not in _rules(report)


class TestDtypeUpcast:
    class _Upcast(_TinyForecaster):
        def forward(self, closeness, period, trend):
            pooled = self._pooled(closeness, period, trend)
            # float64 constant in a float32 graph: the promotion origin.
            pooled = pooled * Tensor(np.array([2.0], dtype=np.float64))
            pred = self.head(pooled)
            return self._to_grid(pred.reshape(
                (-1, self.config.num_regions, self.config.flow_channels)))

    def test_float64_constant_reports_exactly_one_origin(self):
        report = _check(self._Upcast)
        upcasts = [f for f in report.findings if f.rule == "dtype-upcast"]
        # Taint tracking keeps downstream contagion (head matmul, loss
        # subtraction, ...) from re-reporting the same promotion.
        assert len(upcasts) == 1
        assert upcasts[0].op == "mul"
        assert "float64" in upcasts[0].message

    def test_no_other_rules_fire(self):
        report = _check(self._Upcast)
        assert _rules(report) == ["dtype-upcast"]


class TestDeadParameter:
    class _Ghost(_TinyForecaster):
        def __init__(self):
            super().__init__()
            self.ghost = Linear(FEATURES, FEATURES)  # never called

    def test_unused_submodule_params_are_reported(self):
        report = _check(self._Ghost)
        dead = [f for f in report.findings if f.rule == "dead-parameter"]
        assert len(dead) == 2  # ghost.weight, ghost.bias
        assert all(f.module == "ghost" for f in dead)
        assert _rules(report) == ["dead-parameter"]

    def test_allow_unused_silences_the_rule(self):
        with default_dtype(np.float32):
            model = self._Ghost()
        report = check_model(model, CONFIG, allow_unused=("ghost",))
        assert report.ok, [str(f) for f in report.findings]


class TestNumericHazards:
    class _Log(_TinyForecaster):
        def forward(self, closeness, period, trend):
            # relu output is [0, inf) — not *strictly* positive, so the
            # log has no proof against log(0).
            pred = relu(self.head(self._pooled(closeness, period, trend)))
            return self._to_grid(pred.log().reshape(
                (-1, self.config.num_regions, self.config.flow_channels)))

    class _Sqrt(_TinyForecaster):
        def forward(self, closeness, period, trend):
            pred = self.head(self._pooled(closeness, period, trend))
            return self._to_grid(pred.sqrt().reshape(
                (-1, self.config.num_regions, self.config.flow_channels)))

    class _Div(_TinyForecaster):
        def forward(self, closeness, period, trend):
            pred = self.head(self._pooled(closeness, period, trend))
            pred = pred / pred.mean()
            return self._to_grid(pred.reshape(
                (-1, self.config.num_regions, self.config.flow_channels)))

    class _Softmax(_TinyForecaster):
        def forward(self, closeness, period, trend):
            logits = self.head(self._pooled(closeness, period, trend))
            weights = logits.exp()
            pred = weights / weights.sum()  # no max-subtraction
            return self._to_grid(pred.reshape(
                (-1, self.config.num_regions, self.config.flow_channels)))

    @pytest.mark.parametrize("fixture, op", [
        (_Log, "log"), (_Sqrt, "sqrt"), (_Div, "div"),
        (_Softmax, "softmax"),
    ])
    def test_each_hazard_fires_its_rule_only(self, fixture, op):
        report = _check(fixture)
        hazards = [f for f in report.findings if f.rule == "numeric-hazard"]
        assert len(hazards) == 1, [str(f) for f in report.findings]
        assert hazards[0].op == op
        assert _rules(report) == ["numeric-hazard"]

    def test_eps_guard_discharges_the_log_hazard(self):
        class _GuardedLog(_TinyForecaster):
            def forward(self, closeness, period, trend):
                pred = relu(self.head(self._pooled(closeness, period,
                                                   trend)))
                pred = (pred + Tensor(np.float32(1e-6))).log()
                return self._to_grid(pred.reshape(
                    (-1, self.config.num_regions,
                     self.config.flow_channels)))

        report = _check(_GuardedLog)
        assert report.ok, [str(f) for f in report.findings]

    def test_max_shifted_softmax_is_clean(self):
        class _ShiftedSoftmax(_TinyForecaster):
            def forward(self, closeness, period, trend):
                logits = self.head(self._pooled(closeness, period, trend))
                shifted = logits - logits.max(axis=-1, keepdims=True).detach()
                weights = shifted.exp()
                pred = weights / weights.sum()
                return self._to_grid(pred.reshape(
                    (-1, self.config.num_regions,
                     self.config.flow_channels)))

        report = _check(_ShiftedSoftmax)
        assert report.ok, [str(f) for f in report.findings]


class TestReportSurface:
    def test_to_dict_round_trips_the_findings(self):
        report = _check(TestDeadParameter._Ghost)
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["totals"]["params"] == report.total_params
        assert {f["rule"] for f in payload["findings"]} == {"dead-parameter"}

    def test_format_text_names_the_model_and_findings(self):
        report = _check(TestDeadParameter._Ghost)
        text = report.format_text()
        assert "_Ghost" in text
        assert "dead-parameter" in text

    def test_train_eval_mode_is_preserved(self):
        with default_dtype(np.float32):
            model = _TinyForecaster()
        model.eval()
        check_model(model, CONFIG)
        assert model.training is False
