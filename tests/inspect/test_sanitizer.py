"""Runtime concurrency sanitizer: detectors, factories, stress mode."""

import os
import threading
import time

import pytest

from repro.inspect import sanitizer

# These tests open their own sanitizer sessions; under REPRO_TSAN the
# process-wide env session already holds the slot (and several cases
# here *intentionally* produce findings, which would fail the env
# session's end-of-run gate).
pytestmark = pytest.mark.skipif(
    bool(os.environ.get("REPRO_TSAN")),
    reason="REPRO_TSAN env session is active; sanitizer self-tests "
           "need exclusive session control")


def _run_thread(target, name):
    thread = sanitizer.create_thread(target=target, name=name, daemon=True)
    thread.start()
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    return thread


class TestDisabledFactories:
    def test_factories_return_bare_primitives(self):
        # No active session: zero-overhead stock objects, not wrappers.
        assert sanitizer.active_session() is None
        assert type(sanitizer.create_lock()) is type(threading.Lock())
        assert type(sanitizer.create_rlock()) is type(threading.RLock())
        assert isinstance(sanitizer.create_condition(),
                          threading.Condition)
        thread = sanitizer.create_thread(target=lambda: None, name="t",
                                         daemon=True)
        assert type(thread) is threading.Thread
        assert thread.daemon

    def test_bare_lock_still_works_as_context_manager(self):
        lock = sanitizer.create_lock("x")
        with lock:
            assert lock.locked()
        assert not lock.locked()


class TestLockOrderInversion:
    def test_opposite_order_on_two_threads_is_flagged(self):
        # The seeded dynamic deadlock: thread 1 takes A then B, thread 2
        # takes B then A.  Run sequentially — no timing luck needed: the
        # order *graph* convicts, not an actual hang.
        with sanitizer.enabled() as session:
            a = sanitizer.create_lock("A")
            b = sanitizer.create_lock("B")

            def ab():
                with a:
                    with b:
                        pass

            def ba():
                with b:
                    with a:
                        pass

            _run_thread(ab, "t-ab")
            _run_thread(ba, "t-ba")
        rules = [f.rule for f in session.findings]
        assert rules == ["lock-order"], session.format_text()
        finding = session.findings[0]
        assert "'A'" in finding.message and "'B'" in finding.message
        assert finding.thread == "t-ba"

    def test_consistent_order_is_clean(self):
        with sanitizer.enabled() as session:
            a = sanitizer.create_lock("A")
            b = sanitizer.create_lock("B")

            def ab():
                with a:
                    with b:
                        pass

            _run_thread(ab, "t-1")
            _run_thread(ab, "t-2")
        assert not session.findings, session.format_text()

    def test_same_name_different_objects_do_not_alias(self):
        # Edges key on lock identity, not display name: two unrelated
        # locks that happen to share a name must not fabricate a cycle.
        with sanitizer.enabled() as session:
            a1 = sanitizer.create_lock("L")
            a2 = sanitizer.create_lock("L")
            outer = sanitizer.create_lock("outer")

            def one():
                with outer:
                    with a1:
                        pass

            def two():
                with a2:
                    with outer:
                        pass

            _run_thread(one, "t-1")
            _run_thread(two, "t-2")
        assert not session.findings, session.format_text()

    def test_rlock_reentry_is_not_an_inversion(self):
        with sanitizer.enabled() as session:
            r = sanitizer.create_rlock("R")
            with r:
                with r:
                    pass
        assert not session.findings, session.format_text()


class TestForkSafety:
    def test_fork_while_holding_lock_is_flagged(self):
        with sanitizer.enabled() as session:
            lock = sanitizer.create_lock("held-over-fork")
            with lock:
                pid = os.fork()
                if pid == 0:  # pragma: no cover - child exits immediately
                    os._exit(0)
                os.waitpid(pid, 0)
        rules = [f.rule for f in session.findings]
        assert rules == ["fork-safety"], session.format_text()
        assert "held-over-fork" in session.findings[0].message

    def test_fork_with_no_lock_held_is_clean(self):
        with sanitizer.enabled() as session:
            lock = sanitizer.create_lock("released-before-fork")
            with lock:
                pass
            pid = os.fork()
            if pid == 0:  # pragma: no cover - child exits immediately
                os._exit(0)
            os.waitpid(pid, 0)
        assert not session.findings, session.format_text()

    def test_fork_while_nondaemon_sanitized_thread_alive(self):
        with sanitizer.enabled() as session:
            gate = threading.Event()
            thread = sanitizer.create_thread(target=gate.wait,
                                             name="pre-fork-worker",
                                             daemon=False)
            thread.start()
            try:
                pid = os.fork()
                if pid == 0:  # pragma: no cover - child exits immediately
                    os._exit(0)
                os.waitpid(pid, 0)
            finally:
                gate.set()
                thread.join(timeout=5.0)
        rules = [f.rule for f in session.findings]
        assert "fork-safety" in rules, session.format_text()
        assert any("pre-fork-worker" in f.message
                   for f in session.findings)


class TestShutdownAndHolds:
    def test_unjoined_thread_at_finalize_is_flagged(self):
        gate = threading.Event()
        with sanitizer.enabled() as session:
            thread = sanitizer.create_thread(target=gate.wait,
                                             name="leaked-worker",
                                             daemon=True)
            thread.start()
        try:
            rules = [f.rule for f in session.findings]
            assert rules == ["unjoined-thread"], session.format_text()
            assert "leaked-worker" in session.findings[0].message
        finally:
            gate.set()
            thread.join(timeout=5.0)

    def test_joined_thread_is_clean(self):
        with sanitizer.enabled() as session:
            _run_thread(lambda: None, "quick-worker")
        assert not session.findings, session.format_text()

    def test_long_hold_is_flagged(self):
        with sanitizer.enabled(hold_warn_s=0.01) as session:
            lock = sanitizer.create_lock("slow")
            with lock:
                time.sleep(0.05)
        rules = [f.rule for f in session.findings]
        assert rules == ["long-hold"], session.format_text()

    def test_join_thread_reports_on_timeout(self, capsys):
        gate = threading.Event()
        with sanitizer.enabled() as session:
            thread = sanitizer.create_thread(target=gate.wait,
                                             name="stuck-worker",
                                             daemon=True)
            thread.start()
            try:
                assert not sanitizer.join_thread(thread, timeout=0.05,
                                                 what="stuck worker")
            finally:
                gate.set()
                thread.join(timeout=5.0)
        assert "stuck worker" in capsys.readouterr().err
        assert any(f.rule == "unjoined-thread" for f in session.findings)

    def test_join_thread_success_is_quiet(self, capsys):
        thread = sanitizer.create_thread(target=lambda: None, name="ok",
                                         daemon=True)
        thread.start()
        assert sanitizer.join_thread(thread, timeout=5.0)
        assert capsys.readouterr().err == ""


class TestConditionAndSessions:
    def test_condition_wait_notify_tracks_held_state(self):
        with sanitizer.enabled() as session:
            cond = sanitizer.create_condition("CV")
            served = []

            def waiter():
                with cond:
                    cond.wait(timeout=5.0)
                    served.append(1)

            thread = sanitizer.create_thread(target=waiter, name="waiter",
                                             daemon=True)
            thread.start()
            deadline = time.perf_counter() + 5.0
            while time.perf_counter() < deadline:
                with cond:
                    cond.notify_all()
                if served:
                    break
                time.sleep(0.005)
            thread.join(timeout=5.0)
            assert served == [1]
        assert not session.findings, session.format_text()

    def test_nested_sessions_are_rejected(self):
        with sanitizer.enabled():
            with pytest.raises(RuntimeError, match="already active"):
                with sanitizer.enabled():
                    pass  # pragma: no cover

    def test_report_shape(self):
        with sanitizer.enabled(stress=True, seed=7) as session:
            lock = sanitizer.create_lock("L")
            with lock:
                pass
        payload = session.report()
        assert payload["ok"] is True
        assert payload["stress"] is True
        assert payload["seed"] == 7
        assert payload["locks"] == 1
        assert payload["acquisitions"] == 1
        assert payload["findings"] == []

    def test_finding_to_dict_matches_lint_shape(self):
        finding = sanitizer.SanitizerFinding(
            rule="lock-order", path="x.py", line=3, message="m",
            thread="t")
        assert finding.to_dict() == {
            "rule": "lock-order", "path": "x.py", "line": 3,
            "message": "m", "thread": "t"}


class TestStressMode:
    def test_stress_perturbation_is_deterministic_per_seed(self):
        # Same seed + same thread names -> identical sleep sequences.
        def draws(seed):
            with sanitizer.enabled(stress=True, seed=seed) as session:
                out = []

                def worker():
                    rng = session._rng()
                    out.extend(rng.random() for _ in range(4))

                _run_thread(worker, "stress-worker")
            return out

        assert draws(123) == draws(123)
        assert draws(123) != draws(124)

    def test_stress_mode_still_serves_correctly(self):
        # Perturbed scheduling must change timing only, never results.
        with sanitizer.enabled(stress=True, seed=0,
                               max_sleep_ms=0.5) as session:
            lock = sanitizer.create_lock("counter")
            state = {"n": 0}

            def bump():
                for _ in range(25):
                    with lock:
                        state["n"] += 1

            threads = [sanitizer.create_thread(target=bump,
                                               name=f"bumper-{i}",
                                               daemon=True)
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
                assert not thread.is_alive()
            assert state["n"] == 100
        assert not session.findings, session.format_text()
