"""Unit tests for liveness analysis and arena packing."""

import numpy as np
import pytest

from repro.inspect import compute_liveness, plan_arena
from repro.inspect.liveness import ARENA_ALIGN


class TestComputeLiveness:
    def test_birth_to_last_read(self):
        events = [((), ("a",)), (("a",), ("b",)), (("b",), ("c",))]
        intervals = compute_liveness(events)
        assert intervals["a"] == [0, 1]
        assert intervals["b"] == [1, 2]
        assert intervals["c"] == [2, 2]

    def test_rewrite_extends_lifetime(self):
        events = [((), ("a",)), ((), ("b",)), (("b",), ("a",)),
                  (("a",), ("c",))]
        assert compute_liveness(events)["a"] == [0, 3]

    def test_reads_of_unwritten_keys_ignored(self):
        events = [(("input",), ("a",)), (("a", "input"), ("b",))]
        intervals = compute_liveness(events)
        assert "input" not in intervals
        assert intervals["a"] == [0, 1]

    def test_empty(self):
        assert compute_liveness([]) == {}


class TestPlanArena:
    def test_disjoint_lifetimes_share_offsets(self):
        intervals = {"a": [0, 1], "b": [2, 3]}
        sizes = {"a": 100, "b": 100}
        offsets, total = plan_arena(intervals, sizes)
        assert offsets["a"] == offsets["b"] == 0
        assert total == 100

    def test_overlapping_lifetimes_do_not_collide(self):
        intervals = {"a": [0, 2], "b": [1, 3]}
        sizes = {"a": 100, "b": 100}
        offsets, total = plan_arena(intervals, sizes)
        span_a = (offsets["a"], offsets["a"] + 100)
        span_b = (offsets["b"], offsets["b"] + 100)
        assert span_a[1] <= span_b[0] or span_b[1] <= span_a[0]
        assert total >= 100 + ARENA_ALIGN

    def test_offsets_are_aligned(self):
        intervals = {"a": [0, 2], "b": [0, 2], "c": [0, 2]}
        sizes = {"a": 17, "b": 33, "c": 65}
        offsets, _total = plan_arena(intervals, sizes)
        for offset in offsets.values():
            assert offset % ARENA_ALIGN == 0

    def test_total_never_exceeds_unpacked_sum(self):
        rng = np.random.default_rng(0)
        intervals, sizes = {}, {}
        for i in range(40):
            birth = int(rng.integers(0, 30))
            intervals[i] = [birth, birth + int(rng.integers(0, 8))]
            sizes[i] = int(rng.integers(1, 5000))
        offsets, total = plan_arena(intervals, sizes)
        padded = sum(-(-s // ARENA_ALIGN) * ARENA_ALIGN
                     for s in sizes.values())
        assert total <= padded
        # Pairwise: overlapping lifetimes never share bytes.
        keys = list(offsets)
        for i, a in enumerate(keys):
            for b in keys[i + 1:]:
                (ba, da), (bb, db) = intervals[a], intervals[b]
                if ba <= db and bb <= da:  # lifetimes overlap
                    assert (offsets[a] + sizes[a] <= offsets[b]
                            or offsets[b] + sizes[b] <= offsets[a])

    def test_empty(self):
        assert plan_arena({}, {}) == ({}, 0)
