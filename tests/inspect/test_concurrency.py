"""Whole-program lock-discipline pass: rules, config, repo-clean gate.

Each rule is demonstrated by a seeded-bug fixture (the checker flags
it) and a fixed twin (the checker accepts it) — the static half of the
ISSUE's fails-without / passes-with contract.
"""

import textwrap

from repro.inspect import LintConfig, check_concurrency


def _check_source(tmp_path, source, rel="src/repro/serve/mod.py",
                  config=None, extra=None):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    paths = [path]
    for other_rel, other_source in (extra or {}).items():
        other = tmp_path / other_rel
        other.parent.mkdir(parents=True, exist_ok=True)
        other.write_text(textwrap.dedent(other_source))
        paths.append(other)
    if config is None:
        config = LintConfig(disabled=frozenset({"gradcheck-coverage"}))
    return check_concurrency(paths, root=tmp_path, config=config)


class TestLockOrder:
    def test_direct_inversion_is_flagged(self, tmp_path):
        report = _check_source(tmp_path, """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
        """)
        rules = [f.rule for f in report.findings]
        assert rules == ["lock-order"], report.format_text()
        assert "cycle" in report.findings[0].message
        assert "Pair._a" in report.findings[0].message
        assert "Pair._b" in report.findings[0].message

    def test_consistent_order_passes(self, tmp_path):
        report = _check_source(tmp_path, """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def also_forward(self):
                    with self._a:
                        with self._b:
                            pass
        """)
        assert report.ok, report.format_text()
        assert report.order_edges == 1

    def test_interprocedural_cycle_through_helper_call(self, tmp_path):
        # forward holds _a and calls a helper that takes _b; backward
        # holds _b and calls a helper that takes _a.  No single method
        # shows the cycle — only the acquisition closure does.
        report = _check_source(tmp_path, """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def take_b(self):
                    with self._b:
                        pass

                def take_a(self):
                    with self._a:
                        pass

                def forward(self):
                    with self._a:
                        self.take_b()

                def backward(self):
                    with self._b:
                        self.take_a()
        """)
        rules = [f.rule for f in report.findings]
        assert "lock-order" in rules, report.format_text()

    def test_cross_class_cycle_via_attribute_call(self, tmp_path):
        report = _check_source(tmp_path, """
            import threading

            class Inner:
                def __init__(self, outer: "Outer"):
                    self._ilock = threading.Lock()
                    self._outer = outer

                def poke(self):
                    with self._ilock:
                        pass

                def callback(self):
                    with self._ilock:
                        self._outer.notify()

            class Outer:
                def __init__(self):
                    self._olock = threading.Lock()
                    self._inner = Inner(self)

                def notify(self):
                    with self._olock:
                        pass

                def drive(self):
                    with self._olock:
                        self._inner.poke()
        """)
        rules = [f.rule for f in report.findings]
        assert "lock-order" in rules, report.format_text()
        assert "Outer._olock" in report.findings[0].message
        assert "Inner._ilock" in report.findings[0].message

    def test_self_deadlock_on_plain_lock(self, tmp_path):
        report = _check_source(tmp_path, """
            import threading

            class Bad:
                def __init__(self):
                    self._lock = threading.Lock()

                def helper(self):
                    with self._lock:
                        pass

                def outer(self):
                    with self._lock:
                        self.helper()
        """)
        rules = [f.rule for f in report.findings]
        assert rules == ["lock-order"], report.format_text()
        assert "self-deadlock" in report.findings[0].message

    def test_reentrant_rlock_is_not_a_self_deadlock(self, tmp_path):
        report = _check_source(tmp_path, """
            import threading

            class Fine:
                def __init__(self):
                    self._lock = threading.RLock()

                def helper(self):
                    with self._lock:
                        pass

                def outer(self):
                    with self._lock:
                        self.helper()
        """)
        assert report.ok, report.format_text()


class TestGuardedField:
    SEEDED = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def bump(self):
                with self._lock:
                    self._count += 1

            def reset(self):
                self._count = 0{suffix}
    """

    def test_unlocked_write_is_flagged(self, tmp_path):
        report = _check_source(
            tmp_path, self.SEEDED.format(suffix=""))
        rules = sorted(f.rule for f in report.findings)
        assert rules == ["guarded-field"], report.format_text()
        assert "Counter._count" in report.findings[0].message
        assert "Counter.reset()" in report.findings[0].message

    def test_taking_the_lock_fixes_it(self, tmp_path):
        report = _check_source(tmp_path, """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def reset(self):
                    with self._lock:
                        self._count = 0
        """)
        assert report.ok, report.format_text()

    def test_inline_suppression(self, tmp_path):
        report = _check_source(
            tmp_path,
            self.SEEDED.format(suffix="  # lint: ignore[guarded-field]"))
        assert report.ok, report.format_text()

    def test_guard_map_declares_lock_free_fast_path(self, tmp_path):
        config = LintConfig(
            disabled=frozenset({"gradcheck-coverage"}),
            guard_map={"Counter._count": "lock-free"})
        report = _check_source(
            tmp_path, self.SEEDED.format(suffix=""), config=config)
        assert report.ok, report.format_text()

    def test_lifecycle_methods_are_exempt(self, tmp_path):
        report = _check_source(tmp_path, """
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._ready = False

                def start(self):
                    self._ready = True

                def poke(self):
                    with self._lock:
                        if self._ready:
                            self._ready = False
        """)
        assert report.ok, report.format_text()

    def test_private_helper_inherits_callsite_context(self, tmp_path):
        # _drain is only called with the lock held, so its accesses
        # count as locked even though it takes no lock itself.
        report = _check_source(tmp_path, """
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def flush(self):
                    with self._lock:
                        self._drain()

                def clear(self):
                    with self._lock:
                        self._items = []
                        self._drain()

                def _drain(self):
                    while self._items:
                        self._items.pop()
        """)
        assert report.ok, report.format_text()

    def test_unguarded_fields_without_lock_evidence_stay_quiet(
            self, tmp_path):
        # A field never accessed under any lock has no inferable guard.
        report = _check_source(tmp_path, """
            import threading

            class Loose:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._note = None

                def set_note(self, note):
                    self._note = note

                def get_note(self):
                    return self._note
        """)
        assert report.ok, report.format_text()

    def test_sanitizer_factory_locks_are_recognised(self, tmp_path):
        report = _check_source(tmp_path, """
            from repro.inspect import sanitizer

            class Counter:
                def __init__(self):
                    self._lock = sanitizer.create_lock("Counter._lock")
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def reset(self):
                    self._count = 0
        """)
        rules = [f.rule for f in report.findings]
        assert rules == ["guarded-field"], report.format_text()


class TestForkSafety:
    def test_fork_while_holding_lock_is_flagged(self, tmp_path):
        report = _check_source(tmp_path, """
            import os
            import threading

            class Spawner:
                def __init__(self):
                    self._lock = threading.Lock()

                def spawn(self):
                    with self._lock:
                        pid = os.fork()
                        return pid
        """)
        rules = [f.rule for f in report.findings]
        assert rules == ["fork-safety"], report.format_text()
        assert "os.fork()" in report.findings[0].message

    def test_fork_outside_lock_passes(self, tmp_path):
        report = _check_source(tmp_path, """
            import os
            import threading

            class Spawner:
                def __init__(self):
                    self._lock = threading.Lock()

                def spawn(self):
                    with self._lock:
                        pass
                    return os.fork()
        """)
        assert report.ok, report.format_text()

    def test_process_spawn_under_lock_via_context_is_flagged(
            self, tmp_path):
        report = _check_source(tmp_path, """
            import multiprocessing
            import threading

            class Spawner:
                def __init__(self):
                    self._lock = threading.Lock()

                def spawn(self):
                    ctx = multiprocessing.get_context("fork")
                    with self._lock:
                        proc = ctx.Process(target=print, daemon=True)
                        proc.start()
        """)
        rules = [f.rule for f in report.findings]
        assert rules == ["fork-safety"], report.format_text()

    def test_transitive_fork_through_callee_is_flagged(self, tmp_path):
        report = _check_source(tmp_path, """
            import os
            import threading

            class Spawner:
                def __init__(self):
                    self._lock = threading.Lock()

                def do_fork(self):
                    return os.fork()

                def spawn(self):
                    with self._lock:
                        return self.do_fork()
        """)
        rules = [f.rule for f in report.findings]
        assert rules == ["fork-safety"], report.format_text()
        assert "Spawner.do_fork" in report.findings[0].message


class TestReportAndGate:
    def test_report_shape(self, tmp_path):
        report = _check_source(tmp_path, """
            import threading

            class Simple:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n += 1
        """)
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["classes"] == 1
        assert payload["locks"] == 1
        assert payload["findings"] == []
        assert "check-concurrency" in report.format_text()

    def test_repo_source_tree_is_clean(self):
        # The PR-head acceptance gate: `repro check-concurrency` with
        # the committed pyproject config reports nothing unsuppressed.
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        report = check_concurrency(root=root)
        assert report.ok, "\n" + report.format_text()
        assert report.locks >= 4
        assert report.files_checked >= 20
