"""AST linter rules, config loading, and suppression syntax."""

import textwrap

import pytest

from repro.inspect import LintConfig, lint_paths, load_config
from repro.inspect.lint import ALL_RULES


def _lint_source(tmp_path, source, rel="src/repro/tensor/mod.py",
                 config=None):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    if config is None:
        config = LintConfig(disabled=frozenset({"gradcheck-coverage"}))
    return lint_paths([path], root=tmp_path, config=config)


class TestDtypePolicy:
    def test_bare_np_zeros_is_flagged(self, tmp_path):
        report = _lint_source(tmp_path, """
            import numpy as np
            buf = np.zeros((3, 3))
        """)
        assert [f.rule for f in report.findings] == ["dtype-policy"]
        assert report.findings[0].line == 3

    def test_explicit_dtype_passes(self, tmp_path):
        report = _lint_source(tmp_path, """
            import numpy as np
            buf = np.zeros((3, 3), dtype=np.float32)
        """)
        assert report.ok

    def test_asarray_and_like_variants_are_exempt(self, tmp_path):
        report = _lint_source(tmp_path, """
            import numpy as np
            a = np.asarray([1.0])
            b = np.zeros_like(a)
        """)
        assert report.ok

    def test_rule_only_applies_under_configured_paths(self, tmp_path):
        report = _lint_source(tmp_path, """
            import numpy as np
            buf = np.zeros((3, 3))
        """, rel="src/repro/viz/plot.py")
        assert report.ok  # viz is not a dtype-policy path

    def test_inline_suppression_comment(self, tmp_path):
        report = _lint_source(tmp_path, """
            import numpy as np
            buf = np.zeros((3, 3))  # lint: ignore[dtype-policy]
        """)
        assert report.ok

    def test_suppression_is_rule_specific(self, tmp_path):
        report = _lint_source(tmp_path, """
            import numpy as np
            buf = np.zeros((3, 3))  # lint: ignore[mutable-default]
        """)
        assert not report.ok  # wrong rule name does not silence it


class TestOptimizerOut:
    def test_allocation_inside_update_kernel_is_flagged(self, tmp_path):
        report = _lint_source(tmp_path, """
            import numpy as np

            class SGD:
                def _update(self, param, grad):
                    step = np.multiply(grad, 0.1)
                    param -= step
        """, rel="src/repro/optim/sgd.py")
        assert [f.rule for f in report.findings] == ["optimizer-out"]

    def test_out_keyword_passes(self, tmp_path):
        report = _lint_source(tmp_path, """
            import numpy as np

            class SGD:
                def _update(self, param, grad, buf):
                    np.multiply(grad, 0.1, out=buf)
        """, rel="src/repro/optim/sgd.py")
        assert report.ok

    def test_rule_is_scoped_to_update_functions(self, tmp_path):
        report = _lint_source(tmp_path, """
            import numpy as np

            def helper(grad):
                return np.multiply(grad, 0.1)
        """, rel="src/repro/optim/sgd.py")
        assert report.ok


class TestMutableDefault:
    def test_list_literal_default_is_flagged(self, tmp_path):
        report = _lint_source(tmp_path, """
            def f(items=[]):
                return items
        """, rel="src/repro/viz/plot.py")
        assert [f.rule for f in report.findings] == ["mutable-default"]
        assert "f()" in report.findings[0].message

    def test_dict_call_default_is_flagged(self, tmp_path):
        report = _lint_source(tmp_path, """
            def f(*, mapping=dict()):
                return mapping
        """, rel="src/repro/viz/plot.py")
        assert [f.rule for f in report.findings] == ["mutable-default"]

    def test_none_default_passes(self, tmp_path):
        report = _lint_source(tmp_path, """
            def f(items=None, count=3, name="x"):
                return items
        """, rel="src/repro/viz/plot.py")
        assert report.ok


class TestGradcheckCoverage:
    def test_registry_is_complete_so_rule_is_quiet(self, tmp_path):
        (tmp_path / "empty.py").write_text("")
        report = lint_paths([tmp_path / "empty.py"], root=tmp_path,
                            config=LintConfig())
        assert report.ok

    def test_uncovered_ops_is_empty(self):
        from repro.inspect.gradcov import uncovered_ops

        assert uncovered_ops() == []


class TestConfig:
    def test_load_config_reads_pyproject_table(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""
            [tool.repro.lint]
            disable = ["mutable-default"]
            dtype-policy-paths = ["src/only"]

            [tool.repro.lint.per-path-ignores]
            "src/only/legacy.py" = ["dtype-policy"]
        """))
        config = load_config(tmp_path)
        assert config.disabled == frozenset({"mutable-default"})
        assert config.dtype_policy_paths == ("src/only",)
        assert not config.rule_applies("mutable-default", "src/only/a.py")
        assert config.rule_applies("dtype-policy", "src/only/a.py")
        assert not config.rule_applies("dtype-policy", "src/only/legacy.py")
        assert not config.rule_applies("dtype-policy", "src/other/a.py")

    def test_unknown_disabled_rule_raises(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint]\ndisable = [\"no-such-rule\"]\n")
        with pytest.raises(ValueError, match="no-such-rule"):
            load_config(tmp_path)

    def test_missing_pyproject_falls_back_to_defaults(self, tmp_path):
        config = load_config(tmp_path)
        assert config.disabled == frozenset()

    def test_all_rules_names_are_stable(self):
        # docs/static_analysis.md documents these names; renaming one is
        # a breaking change for pyproject configs and suppressions.
        assert ALL_RULES == ("dtype-policy", "gradcheck-coverage",
                             "optimizer-out", "mutable-default",
                             "fork-discipline", "alloc", "bounded-buffer",
                             "thread-discipline")


class TestForkDiscipline:
    def test_multiprocessing_process_is_flagged(self, tmp_path):
        report = _lint_source(tmp_path, """
            import multiprocessing
            proc = multiprocessing.Process(target=print)
        """, rel="src/repro/training/loop.py")
        assert [f.rule for f in report.findings] == ["fork-discipline"]
        assert "repro.parallel" in report.findings[0].message

    def test_module_alias_and_from_import_are_flagged(self, tmp_path):
        report = _lint_source(tmp_path, """
            import multiprocessing as mp
            from multiprocessing import Pool as P
            ctx = mp.get_context("fork")
            pool = P(4)
        """, rel="src/repro/training/loop.py")
        assert [f.rule for f in report.findings] == ["fork-discipline"] * 2

    def test_os_fork_is_flagged(self, tmp_path):
        report = _lint_source(tmp_path, """
            import os
            pid = os.fork()
        """, rel="src/repro/training/loop.py")
        assert [f.rule for f in report.findings] == ["fork-discipline"]
        assert "os.fork" in report.findings[0].message

    def test_repro_parallel_is_exempt_via_per_path_ignores(self, tmp_path):
        config = LintConfig(
            disabled=frozenset({"gradcheck-coverage"}),
            per_path_ignores={"src/repro/parallel": frozenset(
                {"fork-discipline"})})
        report = _lint_source(tmp_path, """
            import multiprocessing
            ctx = multiprocessing.get_context("fork")
        """, rel="src/repro/parallel/engine.py", config=config)
        assert report.ok

    def test_non_forking_multiprocessing_use_passes(self, tmp_path):
        report = _lint_source(tmp_path, """
            import multiprocessing
            alive = multiprocessing.active_children()
            count = multiprocessing.cpu_count()
        """, rel="src/repro/training/loop.py")
        assert report.ok

    def test_unrelated_process_name_passes(self, tmp_path):
        # A local helper that happens to be called Process must not trip
        # the rule: only names bound to multiprocessing count.
        report = _lint_source(tmp_path, """
            def Process(target):
                return target
            proc = Process(target=print)
        """, rel="src/repro/training/loop.py")
        assert report.ok


class TestAlloc:
    """The opt-in zero-allocation rule for compiled-plan hot paths."""

    CONFIG = LintConfig(disabled=frozenset({"gradcheck-coverage"}),
                        alloc_paths=("src/repro/compile",))

    def test_allocating_call_is_flagged_in_configured_paths(self, tmp_path):
        report = _lint_source(tmp_path, """
            import numpy as np
            buf = np.empty((3, 3), dtype=np.float64)
        """, rel="src/repro/compile/plan.py", config=self.CONFIG)
        assert [f.rule for f in report.findings] == ["alloc"]
        assert "out=" in report.findings[0].message

    def test_out_keyword_passes(self, tmp_path):
        report = _lint_source(tmp_path, """
            import numpy as np

            def kernel(a, b, buf):
                np.matmul(a, b, out=buf)
                np.copyto(buf, a)
        """, rel="src/repro/compile/plan.py", config=self.CONFIG)
        assert report.ok

    def test_silent_outside_configured_paths(self, tmp_path):
        report = _lint_source(tmp_path, """
            import numpy as np
            buf = np.empty((3, 3), dtype=np.float64)
        """, rel="src/repro/tensor/mod.py", config=self.CONFIG)
        assert report.ok

    def test_rule_is_opt_in_by_default(self, tmp_path):
        # An empty alloc-paths config (the LintConfig default) means the
        # rule never fires, anywhere.
        report = _lint_source(tmp_path, """
            import numpy as np
            buf = np.empty((3, 3), dtype=np.float64)
        """, rel="src/repro/compile/plan.py")
        assert report.ok

    def test_inline_suppression_for_plan_build_allocations(self, tmp_path):
        report = _lint_source(tmp_path, """
            import numpy as np
            ones = np.ones_like(np.float64(0.0))  # lint: ignore[alloc]
        """, rel="src/repro/compile/step.py", config=self.CONFIG)
        assert report.ok

    def test_alloc_paths_loaded_from_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""
            [tool.repro.lint]
            alloc-paths = ["src/repro/compile", "src/repro/tensor/scratch.py"]
        """))
        config = load_config(tmp_path)
        assert config.alloc_paths == ("src/repro/compile",
                                      "src/repro/tensor/scratch.py")
        assert config.rule_applies("alloc", "src/repro/compile/plan.py")
        assert config.rule_applies("alloc", "src/repro/tensor/scratch.py")
        assert not config.rule_applies("alloc", "src/repro/tensor/ops.py")


class TestBoundedBuffer:
    """Every deque under repro.stream must declare its maxlen bound."""

    def test_unbounded_deque_is_flagged_in_stream_paths(self, tmp_path):
        report = _lint_source(tmp_path, """
            from collections import deque
            buffer = deque()
        """, rel="src/repro/stream/ingest.py")
        assert [f.rule for f in report.findings] == ["bounded-buffer"]
        assert "maxlen" in report.findings[0].message

    def test_maxlen_keyword_passes(self, tmp_path):
        report = _lint_source(tmp_path, """
            from collections import deque
            buffer = deque(maxlen=64)
        """, rel="src/repro/stream/ingest.py")
        assert report.ok

    def test_positional_maxlen_passes(self, tmp_path):
        report = _lint_source(tmp_path, """
            from collections import deque
            buffer = deque([], 64)
        """, rel="src/repro/stream/ingest.py")
        assert report.ok

    def test_module_attribute_and_alias_are_flagged(self, tmp_path):
        report = _lint_source(tmp_path, """
            import collections
            from collections import deque as dq
            a = collections.deque()
            b = dq()
        """, rel="src/repro/stream/drift.py")
        assert [f.rule for f in report.findings] == ["bounded-buffer"] * 2

    def test_silent_outside_stream_paths(self, tmp_path):
        report = _lint_source(tmp_path, """
            from collections import deque
            buffer = deque()
        """, rel="src/repro/training/trainer.py")
        assert report.ok

    def test_inline_suppression(self, tmp_path):
        report = _lint_source(tmp_path, """
            from collections import deque
            buffer = deque()  # lint: ignore[bounded-buffer]
        """, rel="src/repro/stream/ingest.py")
        assert report.ok

    def test_unrelated_deque_name_passes(self, tmp_path):
        # A local helper *called* deque is not collections.deque.
        report = _lint_source(tmp_path, """
            def deque_like():
                return []
            buffer = deque_like()
        """, rel="src/repro/stream/ingest.py")
        assert report.ok

    def test_bounded_buffer_paths_loaded_from_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""
            [tool.repro.lint]
            bounded-buffer-paths = ["src/repro/stream", "src/repro/serve"]
        """))
        config = load_config(tmp_path)
        assert config.bounded_buffer_paths == ("src/repro/stream",
                                               "src/repro/serve")
        assert config.rule_applies("bounded-buffer", "src/repro/serve/b.py")
        assert not config.rule_applies("bounded-buffer", "src/repro/nn/a.py")

    def test_stream_package_is_clean(self):
        # The rule holds on the real package: no unbounded buffers.
        from pathlib import Path
        root = Path(__file__).resolve().parents[2]
        report = lint_paths(
            [root / "src/repro/stream"], root=root,
            config=LintConfig(disabled=frozenset({"gradcheck-coverage"})))
        assert report.ok, report.format_text()


class TestReportMechanics:
    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        report = _lint_source(tmp_path, "def broken(:\n")
        assert [f.rule for f in report.findings] == ["parse-error"]

    def test_directory_walk_and_sorted_output(self, tmp_path):
        config = LintConfig(disabled=frozenset({"gradcheck-coverage"}))
        base = tmp_path / "src/repro/tensor"
        base.mkdir(parents=True)
        (base / "b.py").write_text("import numpy as np\nx = np.ones(3)\n")
        (base / "a.py").write_text("import numpy as np\nx = np.eye(3)\n")
        report = lint_paths([tmp_path / "src"], root=tmp_path,
                            config=config)
        assert report.files_checked == 2
        assert [f.path for f in report.findings] == [
            "src/repro/tensor/a.py", "src/repro/tensor/b.py"]

    def test_repo_source_tree_is_clean(self):
        # The PR-head acceptance gate: `repro lint` over src/repro with
        # the committed pyproject config reports nothing.
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        report = lint_paths([root / "src" / "repro"], root=root)
        assert report.ok, "\n" + report.format_text()
        assert report.files_checked > 100


class TestThreadDiscipline:
    def test_thread_without_daemon_is_flagged(self, tmp_path):
        report = _lint_source(tmp_path, """
            import threading
            t = threading.Thread(target=print, name="t")
        """, rel="src/repro/serve/mod.py")
        assert [f.rule for f in report.findings] == ["thread-discipline"]

    def test_from_import_thread_is_flagged(self, tmp_path):
        report = _lint_source(tmp_path, """
            from threading import Thread
            t = Thread(target=print, name="t")
        """, rel="src/repro/serve/mod.py")
        assert [f.rule for f in report.findings] == ["thread-discipline"]

    def test_create_thread_without_daemon_is_flagged(self, tmp_path):
        report = _lint_source(tmp_path, """
            from repro.inspect import sanitizer
            t = sanitizer.create_thread(target=print, name="t")
        """, rel="src/repro/serve/mod.py")
        assert [f.rule for f in report.findings] == ["thread-discipline"]

    def test_explicit_daemon_passes(self, tmp_path):
        report = _lint_source(tmp_path, """
            import threading
            t = threading.Thread(target=print, name="t", daemon=True)
        """, rel="src/repro/serve/mod.py")
        assert report.ok

    def test_unbounded_join_is_flagged(self, tmp_path):
        report = _lint_source(tmp_path, """
            import threading
            t = threading.Thread(target=print, name="t", daemon=True)
            t.join()
        """, rel="src/repro/serve/mod.py")
        assert [f.rule for f in report.findings] == ["thread-discipline"]
        assert "join" in report.findings[0].message

    def test_bounded_join_passes(self, tmp_path):
        report = _lint_source(tmp_path, """
            import threading
            t = threading.Thread(target=print, name="t", daemon=True)
            t.join(timeout=5.0)
        """, rel="src/repro/serve/mod.py")
        assert report.ok

    def test_str_join_with_argument_is_not_flagged(self, tmp_path):
        report = _lint_source(tmp_path, """
            text = ", ".join(["a", "b"])
        """, rel="src/repro/serve/mod.py")
        assert report.ok
