"""Tests for optimizers, schedules, and clipping."""

import numpy as np
import pytest

from repro import nn, optim
from repro.tensor import Tensor


def quadratic_problem():
    """Minimize ||w - target||^2; returns (param, loss_fn, target)."""
    target = np.array([1.0, -2.0, 3.0])
    w = nn.Parameter(np.zeros(3))

    def loss():
        diff = w - Tensor(target)
        return (diff * diff).sum()

    return w, loss, target


def run_steps(optimizer, loss_fn, steps):
    for _ in range(steps):
        optimizer.zero_grad()
        loss_fn().backward()
        optimizer.step()


class TestOptimizers:
    @pytest.mark.parametrize(
        "make",
        [
            lambda p: optim.SGD(p, lr=0.1),
            lambda p: optim.SGD(p, lr=0.05, momentum=0.9),
            lambda p: optim.Adam(p, lr=0.2),
            lambda p: optim.RMSProp(p, lr=0.1),
        ],
        ids=["sgd", "sgd-momentum", "adam", "rmsprop"],
    )
    def test_converges_on_quadratic(self, make):
        w, loss_fn, target = quadratic_problem()
        run_steps(make([w]), loss_fn, 200)
        np.testing.assert_allclose(w.data, target, atol=1e-2)

    def test_empty_parameters_raises(self):
        with pytest.raises(ValueError):
            optim.SGD([], lr=0.1)

    def test_nonpositive_lr_raises(self):
        w, _loss, _target = quadratic_problem()
        with pytest.raises(ValueError):
            optim.Adam([w], lr=0.0)

    def test_step_skips_gradless_parameters(self):
        w = nn.Parameter(np.ones(2))
        unused = nn.Parameter(np.ones(2))
        opt = optim.SGD([w, unused], lr=0.1)
        (w.sum()).backward()
        opt.step()
        np.testing.assert_allclose(unused.data, 1.0)
        assert not np.allclose(w.data, 1.0)

    def test_weight_decay_shrinks_weights(self):
        w = nn.Parameter(np.ones(3) * 10)
        opt = optim.SGD([w], lr=0.1, weight_decay=0.5)
        # Gradient of this loss is zero everywhere, so only decay acts.
        loss = (w * Tensor(np.zeros(3))).sum()
        loss.backward()
        opt.step()
        assert np.all(w.data < 10.0)

    def test_adam_bias_correction_first_step(self):
        # After one step with gradient g, Adam moves by ~lr * sign(g).
        w = nn.Parameter(np.array([0.0]))
        opt = optim.Adam([w], lr=0.1)
        (w * 3.0).sum().backward()
        opt.step()
        np.testing.assert_allclose(w.data, [-0.1], atol=1e-6)


class TestSchedules:
    def test_step_decay(self):
        w, loss_fn, _t = quadratic_problem()
        opt = optim.SGD([w], lr=1.0)
        sched = optim.StepDecay(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        np.testing.assert_allclose(opt.lr, 0.1)

    def test_exponential_decay(self):
        w, _loss, _t = quadratic_problem()
        opt = optim.SGD([w], lr=1.0)
        sched = optim.ExponentialDecay(opt, gamma=0.5)
        sched.step()
        sched.step()
        np.testing.assert_allclose(opt.lr, 0.25)

    def test_cosine_reaches_min(self):
        w, _loss, _t = quadratic_problem()
        opt = optim.SGD([w], lr=1.0)
        sched = optim.CosineDecay(opt, total_epochs=10, min_lr=0.1)
        for _ in range(10):
            sched.step()
        np.testing.assert_allclose(opt.lr, 0.1, atol=1e-12)

    def test_cosine_monotone_decreasing(self):
        w, _loss, _t = quadratic_problem()
        opt = optim.SGD([w], lr=1.0)
        sched = optim.CosineDecay(opt, total_epochs=5)
        rates = []
        for _ in range(5):
            sched.step()
            rates.append(opt.lr)
        assert all(a >= b for a, b in zip(rates, rates[1:]))


class TestClipping:
    def test_clip_norm_scales_down(self):
        w = nn.Parameter(np.zeros(4))
        w.grad = np.ones(4) * 10.0
        pre = optim.clip_grad_norm([w], max_norm=1.0)
        np.testing.assert_allclose(pre, 20.0)
        np.testing.assert_allclose(np.linalg.norm(w.grad), 1.0)

    def test_clip_norm_noop_when_small(self):
        w = nn.Parameter(np.zeros(4))
        w.grad = np.full(4, 0.1)
        optim.clip_grad_norm([w], max_norm=10.0)
        np.testing.assert_allclose(w.grad, 0.1)

    def test_clip_value(self):
        w = nn.Parameter(np.zeros(3))
        w.grad = np.array([-5.0, 0.5, 5.0])
        optim.clip_grad_value([w], 1.0)
        np.testing.assert_allclose(w.grad, [-1.0, 0.5, 1.0])

    def test_clip_skips_gradless(self):
        w = nn.Parameter(np.zeros(3))
        optim.clip_grad_norm([w], 1.0)  # must not raise
        optim.clip_grad_value([w], 1.0)
