"""Numerical gradient checks through complete layers.

The op-level checks in tests/tensor cover primitives; these verify
that *composed* layers (recurrent cells, attention, normalization,
graph convs) produce correct gradients end to end — the strongest
guarantee the substrate can give the model implementations.
"""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, check_gradients

RNG = np.random.default_rng(17)


def rand(*shape):
    return Tensor(RNG.standard_normal(shape))


def check_layer_input_grad(layer, x):
    """Gradient-check the layer w.r.t. its input tensor."""
    check_gradients(lambda t: layer(t[0]).tanh().sum(), [x])


class TestLayerInputGradients:
    def test_linear(self):
        check_layer_input_grad(nn.Linear(4, 3, rng=np.random.default_rng(0)),
                               rand(2, 4))

    def test_conv2d(self):
        check_layer_input_grad(
            nn.Conv2d(2, 3, 3, padding="same", rng=np.random.default_rng(0)),
            rand(2, 2, 4, 5),
        )

    def test_layernorm(self):
        check_layer_input_grad(nn.LayerNorm(6), rand(3, 6))

    def test_batchnorm_training_mode(self):
        layer = nn.BatchNorm2d(2)
        check_gradients(lambda t: layer(t[0]).sum(), [rand(3, 2, 2, 2)])

    def test_graph_conv(self):
        adj = nn.normalize_adjacency(nn.grid_adjacency(2, 3))
        check_layer_input_grad(nn.GraphConv(4, 3, adj, rng=np.random.default_rng(0)),
                               rand(2, 6, 4))

    def test_cheb_conv(self):
        adj = nn.grid_adjacency(2, 3)
        check_layer_input_grad(
            nn.ChebConv(4, 3, adj, order=2, rng=np.random.default_rng(0)),
            rand(2, 6, 4),
        )

    def test_adaptive_graph_conv(self):
        layer = nn.AdaptiveGraphConv(4, 3, num_nodes=6, rng=np.random.default_rng(0))
        check_layer_input_grad(layer, rand(2, 6, 4))


class TestRecurrentGradients:
    def test_gru_cell_input(self):
        cell = nn.GRUCell(3, 4, rng=np.random.default_rng(0))
        h = cell.initial_state(2)
        check_gradients(lambda t: cell(t[0], h).tanh().sum(), [rand(2, 3)])

    def test_gru_cell_hidden(self):
        cell = nn.GRUCell(3, 4, rng=np.random.default_rng(0))
        x = rand(2, 3)
        check_gradients(lambda t: cell(x, t[0]).tanh().sum(), [rand(2, 4)])

    def test_lstm_cell_input(self):
        cell = nn.LSTMCell(3, 4, rng=np.random.default_rng(0))
        h, c = cell.initial_state(2)

        def fn(t):
            h_next, c_next = cell(t[0], (h, c))
            return (h_next + c_next).tanh().sum()

        check_gradients(fn, [rand(2, 3)])

    def test_gru_through_time(self):
        layer = nn.GRU(2, 3, rng=np.random.default_rng(0))

        def fn(t):
            outputs, _last = layer(t[0])
            return outputs.tanh().sum()

        check_gradients(fn, [rand(1, 4, 2)])


class TestAttentionGradients:
    def test_scaled_dot_product(self):
        def fn(t):
            out, _w = nn.scaled_dot_product_attention(t[0], t[1], t[2])
            return out.tanh().sum()

        check_gradients(fn, [rand(1, 3, 4), rand(1, 5, 4), rand(1, 5, 4)])

    def test_multihead_input(self):
        mha = nn.MultiHeadAttention(8, 2, rng=np.random.default_rng(0))
        check_gradients(lambda t: mha(t[0]).tanh().sum(), [rand(1, 3, 8)])


class TestParameterGradients:
    @pytest.mark.parametrize("make_layer,x_shape", [
        (lambda: nn.Linear(3, 2, rng=np.random.default_rng(0)), (2, 3)),
        (lambda: nn.Conv2d(1, 2, 3, padding=1, rng=np.random.default_rng(0)),
         (1, 1, 4, 4)),
        (lambda: nn.GRUCell(2, 3, rng=np.random.default_rng(0)), None),
    ], ids=["linear", "conv", "gru"])
    def test_every_parameter_receives_gradient(self, make_layer, x_shape):
        layer = make_layer()
        if x_shape is None:
            # Non-zero hidden state: from a zero state the recurrent
            # kernel w_hh legitimately receives a zero gradient.
            out = layer(rand(2, 2), rand(2, 3))
        else:
            out = layer(rand(*x_shape))
        out.sum().backward()
        for name, param in layer.named_parameters():
            assert param.grad is not None, name
            assert np.any(param.grad != 0) or param.size == 0, name
