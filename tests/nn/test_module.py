"""Tests for Module registration, modes, and serialization."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Linear, Module, Parameter, Sequential


class Tiny(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(3, 4, rng=np.random.default_rng(1))
        self.fc2 = Linear(4, 2, rng=np.random.default_rng(2))
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestRegistration:
    def test_named_parameters_include_children(self):
        names = dict(Tiny().named_parameters())
        assert "fc1.weight" in names
        assert "fc2.bias" in names
        assert "scale" in names

    def test_parameters_count(self):
        model = Tiny()
        assert len(model.parameters()) == 5
        assert model.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2 + 1

    def test_shared_parameter_deduplicated(self):
        model = Tiny()
        model.fc2.weight = model.fc1.weight  # tie weights (shapes aside)
        params = model.parameters()
        assert len(params) == len({id(p) for p in params})

    def test_modules_traversal(self):
        model = Tiny()
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds.count("Linear") == 2

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestModes:
    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2), nn.Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_dropout_identity_in_eval(self):
        layer = nn.Dropout(0.9, rng=np.random.default_rng(0))
        layer.eval()
        x = nn.Parameter(np.ones((4, 4)))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_dropout_scales_in_train(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = nn.Parameter(np.ones((2000,)))
        out = layer(x).data
        # Inverted dropout keeps the expectation.
        assert abs(out.mean() - 1.0) < 0.1
        assert set(np.round(np.unique(out), 6)) <= {0.0, 2.0}

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestStateDict:
    def test_round_trip(self):
        a, b = Tiny(), Tiny()
        b.fc1.weight.data[...] = 0.0
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(b.fc1.weight.data, a.fc1.weight.data)

    def test_missing_key_raises(self):
        model = Tiny()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = Tiny()
        state = model.state_dict()
        state["scale"] = np.ones(3)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_save_load_file(self, tmp_path):
        a, b = Tiny(), Tiny()
        path = tmp_path / "weights.npz"
        a.save(path)
        b.load(path)
        np.testing.assert_allclose(b.fc2.weight.data, a.fc2.weight.data)

    def test_zero_grad(self):
        model = Tiny()
        x = nn.Parameter(np.ones((2, 3)))
        model(x).sum().backward()
        assert model.fc1.weight.grad is not None
        model.zero_grad()
        assert model.fc1.weight.grad is None
