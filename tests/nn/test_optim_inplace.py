"""In-place optimizer kernels must match the reference kernels exactly.

The optimized kernels in :mod:`repro.optim` rewrite each update with
preallocated buffers and ``out=`` ufuncs; these tests pin them to the
allocating reference implementations (:mod:`repro.optim.reference`)
step for step in float64, including weight decay, momentum, and
resumption from a checkpoint.
"""

import numpy as np
import pytest

from repro.nn.module import Module, Parameter
from repro.optim import (
    SGD,
    Adagrad,
    Adam,
    AdamW,
    ReferenceAdagrad,
    ReferenceAdam,
    ReferenceAdamW,
    ReferenceRMSProp,
    ReferenceSGD,
    RMSProp,
    clip_grad_norm,
)
from repro.training import load_checkpoint, save_checkpoint

SHAPES = [(4, 3), (5,), (2, 2, 3)]

PAIRS = [
    ("sgd", SGD, ReferenceSGD, {"lr": 0.05}),
    ("sgd-momentum-wd", SGD, ReferenceSGD,
     {"lr": 0.05, "momentum": 0.9, "weight_decay": 1e-2}),
    ("adam", Adam, ReferenceAdam, {"lr": 1e-3}),
    ("adam-wd", Adam, ReferenceAdam, {"lr": 1e-3, "weight_decay": 1e-2}),
    ("adamw", AdamW, ReferenceAdamW, {"lr": 1e-3, "weight_decay": 1e-2}),
    ("rmsprop", RMSProp, ReferenceRMSProp, {"lr": 1e-3}),
    ("adagrad", Adagrad, ReferenceAdagrad, {"lr": 1e-2}),
]


def make_params(seed=0):
    rng = np.random.default_rng(seed)
    return [Parameter(rng.standard_normal(shape), name=f"p{i}")
            for i, shape in enumerate(SHAPES)]


def drive(optimizer, params, steps, seed=1):
    """Run ``steps`` updates with a deterministic gradient stream."""
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        for param in params:
            param.grad = rng.standard_normal(param.data.shape)
        optimizer.step()


class TestEquivalence:
    @pytest.mark.parametrize("name,fast_cls,ref_cls,kwargs",
                             PAIRS, ids=[p[0] for p in PAIRS])
    def test_matches_reference_over_50_steps(self, name, fast_cls, ref_cls,
                                             kwargs):
        fast_params = make_params()
        ref_params = make_params()
        drive(fast_cls(fast_params, **kwargs), fast_params, steps=50)
        drive(ref_cls(ref_params, **kwargs), ref_params, steps=50)
        for fast, ref in zip(fast_params, ref_params):
            np.testing.assert_allclose(fast.data, ref.data,
                                       rtol=0.0, atol=1e-12)

    @pytest.mark.parametrize("name,fast_cls,ref_cls,kwargs",
                             PAIRS, ids=[p[0] for p in PAIRS])
    def test_state_dicts_match_reference(self, name, fast_cls, ref_cls,
                                         kwargs):
        fast_params = make_params()
        ref_params = make_params()
        fast = fast_cls(fast_params, **kwargs)
        ref = ref_cls(ref_params, **kwargs)
        drive(fast, fast_params, steps=10)
        drive(ref, ref_params, steps=10)
        assert len(fast._state) == len(ref._state)
        for fast_state, ref_state in zip(fast._state, ref._state):
            assert set(fast_state) == set(ref_state)
            for key in fast_state:
                np.testing.assert_allclose(
                    np.asarray(fast_state[key]), np.asarray(ref_state[key]),
                    rtol=0.0, atol=1e-12)


class _TinyModel(Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.w = Parameter(rng.standard_normal((4, 3)), name="w")
        self.b = Parameter(rng.standard_normal((3,)), name="b")


def drive_model(model, optimizer, steps, seed=1, start=0):
    rng = np.random.default_rng(seed)
    for step in range(start + steps):
        grads = [rng.standard_normal(p.data.shape) for p in model.parameters()]
        if step < start:
            continue  # replay the stream so resumed runs see the same grads
        for param, grad in zip(model.parameters(), grads):
            param.grad = grad
        optimizer.step()


class TestCheckpointResume:
    def test_resumed_inplace_matches_uninterrupted_reference(self, tmp_path):
        # Reference runs 30 steps straight; the in-place kernel resumes
        # from the reference's 10-step checkpoint and runs the last 20.
        ref_model = _TinyModel()
        ref_opt = ReferenceAdam(ref_model.parameters(), lr=1e-3,
                                weight_decay=1e-2)
        drive_model(ref_model, ref_opt, steps=10)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, ref_model, ref_opt)
        drive_model(ref_model, ref_opt, steps=20, start=10)

        resumed_model = _TinyModel(seed=99)  # different init: must be loaded
        resumed_opt = Adam(resumed_model.parameters(), lr=1e-3,
                           weight_decay=1e-2)
        load_checkpoint(path, resumed_model, resumed_opt)
        drive_model(resumed_model, resumed_opt, steps=20, start=10)

        for ref, res in zip(ref_model.parameters(), resumed_model.parameters()):
            np.testing.assert_allclose(res.data, ref.data,
                                       rtol=0.0, atol=1e-12)

    def test_resume_after_dtype_cast_self_heals_buffers(self, tmp_path):
        # Scratch buffers allocated in float64 must be rebuilt when a
        # float32 state is restored (shape/dtype revalidation).
        model = _TinyModel()
        opt = Adam(model.parameters(), lr=1e-3)
        drive_model(model, opt, steps=3)
        for param in model.parameters():
            param.data = param.data.astype(np.float32)
            param.grad = None
        for index, state in enumerate(opt._state):
            opt._state[index] = {
                key: (value.astype(np.float32)
                      if isinstance(value, np.ndarray) else value)
                for key, value in state.items()
            }
        drive_model(model, opt, steps=2, start=3)
        for param in model.parameters():
            assert param.data.dtype == np.float32
        for state in opt._state:
            assert state["m"].dtype == np.float32


class TestClipGradNorm:
    def test_value_matches_definition(self):
        params = make_params()
        rng = np.random.default_rng(3)
        for param in params:
            param.grad = rng.standard_normal(param.data.shape)
        expected = float(np.sqrt(sum(float((p.grad ** 2).sum())
                                     for p in params)))
        max_norm = expected / 2.0
        grads_before = [p.grad for p in params]
        returned = clip_grad_norm(params, max_norm)
        assert returned == pytest.approx(expected, rel=1e-12)
        for param, original in zip(params, grads_before):
            assert param.grad is original  # rescaled in place, not replaced
        clipped = float(np.sqrt(sum(float((p.grad ** 2).sum())
                                    for p in params)))
        assert clipped == pytest.approx(max_norm, rel=1e-9)

    def test_no_dtype_upcast_on_float32_grads(self):
        params = make_params()
        rng = np.random.default_rng(3)
        for param in params:
            param.data = param.data.astype(np.float32)
            param.grad = rng.standard_normal(param.data.shape).astype(np.float32)
        clip_grad_norm(params, 1e-3)  # tiny max_norm forces a rescale
        for param in params:
            assert param.grad.dtype == np.float32


class TestAllocationCounters:
    def test_inplace_kernels_allocate_zero_in_steady_state(self):
        for name, fast_cls, _ref_cls, kwargs in PAIRS:
            params = make_params()
            opt = fast_cls(params, **kwargs)
            drive(opt, params, steps=2)  # step 1 allocates state + scratch
            assert opt.last_step_alloc_bytes == 0, name
            assert opt.alloc_bytes_total > 0, name  # the one-time setup

    def test_reference_kernels_allocate_every_step(self):
        for name, _fast_cls, ref_cls, kwargs in PAIRS:
            params = make_params()
            opt = ref_cls(params, **kwargs)
            drive(opt, params, steps=2)
            assert opt.last_step_alloc_bytes > 0, name
