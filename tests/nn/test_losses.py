"""Tests for losses and Gaussian divergences."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, check_gradients

RNG = np.random.default_rng(11)


def rand(*shape):
    return Tensor(RNG.standard_normal(shape))


class TestRegressionLosses:
    def test_mse_zero_at_target(self):
        x = rand(4, 3)
        assert nn.mse_loss(x, x).item() == 0.0

    def test_mse_matches_numpy(self):
        a, b = rand(4, 3), rand(4, 3)
        expected = np.mean((a.data - b.data) ** 2)
        np.testing.assert_allclose(nn.mse_loss(a, b).item(), expected)

    def test_mae_matches_numpy(self):
        a, b = rand(4, 3), rand(4, 3)
        expected = np.mean(np.abs(a.data - b.data))
        np.testing.assert_allclose(nn.mae_loss(a, b).item(), expected)

    def test_huber_below_mse_for_outliers(self):
        target = Tensor(np.zeros(4))
        pred = Tensor(np.array([0.1, 0.2, 0.1, 10.0]))
        assert nn.huber_loss(pred, target).item() < nn.mse_loss(pred, target).item()

    def test_huber_quadratic_near_zero(self):
        target = Tensor(np.zeros(3))
        pred = Tensor(np.array([0.1, -0.2, 0.3]))
        np.testing.assert_allclose(
            nn.huber_loss(pred, target).item(),
            0.5 * np.mean(pred.data ** 2),
            rtol=1e-10,
        )

    @pytest.mark.parametrize("loss", [nn.mse_loss, nn.huber_loss])
    def test_grad(self, loss):
        check_gradients(lambda t: loss(t[0], t[1]), [rand(3, 4), rand(3, 4)])


class TestGaussianKL:
    def test_standard_normal_kl_zero_at_standard(self):
        mu = Tensor(np.zeros((4, 8)))
        logvar = Tensor(np.zeros((4, 8)))
        assert abs(nn.kl_standard_normal(mu, logvar).item()) < 1e-12

    def test_standard_normal_kl_positive(self):
        kl = nn.kl_standard_normal(rand(4, 8), rand(4, 8))
        assert kl.item() > 0

    def test_kl_two_gaussians_zero_when_equal(self):
        mu, logvar = rand(4, 8), rand(4, 8)
        kl = nn.kl_diag_gaussians(mu, logvar, mu, logvar)
        assert abs(kl.item()) < 1e-12

    def test_kl_two_gaussians_nonnegative(self):
        kl = nn.kl_diag_gaussians(rand(4, 8), rand(4, 8), rand(4, 8), rand(4, 8))
        assert kl.item() >= 0

    def test_kl_asymmetric(self):
        mu1, lv1 = rand(4, 8), rand(4, 8)
        mu2, lv2 = rand(4, 8), rand(4, 8)
        forward = nn.kl_diag_gaussians(mu1, lv1, mu2, lv2).item()
        reverse = nn.kl_diag_gaussians(mu2, lv2, mu1, lv1).item()
        assert not np.isclose(forward, reverse)

    def test_kl_against_standard_agrees_with_general_form(self):
        mu, logvar = rand(4, 8), rand(4, 8)
        zeros = Tensor(np.zeros((4, 8)))
        specific = nn.kl_standard_normal(mu, logvar).item()
        general = nn.kl_diag_gaussians(mu, logvar, zeros, zeros).item()
        np.testing.assert_allclose(specific, general, rtol=1e-10)

    def test_kl_closed_form_1d(self):
        # KL(N(1, e^0)||N(0,1)) = 0.5 * (1 + 1 - 1 - 0) = 0.5
        mu = Tensor(np.array([[1.0]]))
        logvar = Tensor(np.array([[0.0]]))
        np.testing.assert_allclose(nn.kl_standard_normal(mu, logvar).item(), 0.5)

    def test_grad(self):
        check_gradients(
            lambda t: nn.kl_diag_gaussians(t[0], t[1], t[2], t[3]),
            [rand(2, 4), rand(2, 4), rand(2, 4), rand(2, 4)],
        )

    def test_reduce_mean_false_returns_per_sample(self):
        kl = nn.kl_standard_normal(rand(4, 8), rand(4, 8), reduce_mean=False)
        assert kl.shape == (4,)


class TestGaussianNLL:
    def test_unit_variance_reduces_to_half_sse(self):
        target, mu = rand(3, 5), rand(3, 5)
        expected = 0.5 * np.sum((target.data - mu.data) ** 2, axis=-1).mean()
        np.testing.assert_allclose(nn.gaussian_nll(target, mu).item(), expected)

    def test_learned_variance_grad(self):
        check_gradients(
            lambda t: nn.gaussian_nll(t[0], t[1], t[2]),
            [rand(2, 4), rand(2, 4), rand(2, 4)],
        )
