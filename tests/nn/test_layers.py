"""Tests for individual layers: shapes, gradients, semantics."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, check_gradients

RNG = np.random.default_rng(3)


def rand(*shape):
    return Tensor(RNG.standard_normal(shape))


class TestLinear:
    def test_output_shape(self):
        layer = nn.Linear(5, 3, rng=np.random.default_rng(0))
        assert layer(rand(7, 5)).shape == (7, 3)

    def test_batched_leading_axes(self):
        layer = nn.Linear(5, 3, rng=np.random.default_rng(0))
        assert layer(rand(2, 4, 5)).shape == (2, 4, 3)

    def test_no_bias(self):
        layer = nn.Linear(5, 3, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_flow_to_weights(self):
        layer = nn.Linear(4, 2, rng=np.random.default_rng(0))
        layer(rand(3, 4)).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_repr(self):
        assert "Linear" in repr(nn.Linear(2, 3))


class TestConv2d:
    def test_same_padding_preserves_shape(self):
        layer = nn.Conv2d(2, 8, 3, padding="same", rng=np.random.default_rng(0))
        assert layer(rand(1, 2, 10, 20)).shape == (1, 8, 10, 20)

    def test_same_padding_even_kernel_raises(self):
        with pytest.raises(ValueError):
            nn.Conv2d(2, 4, 2, padding="same")

    def test_stride(self):
        layer = nn.Conv2d(1, 1, 3, stride=2, padding=1, rng=np.random.default_rng(0))
        assert layer(rand(1, 1, 8, 8)).shape == (1, 1, 4, 4)

    def test_gradcheck_through_layer(self):
        layer = nn.Conv2d(2, 3, 3, padding=1, rng=np.random.default_rng(0))

        def fn(t):
            layer.weight.data = t[0].data
            layer.bias.data = t[1].data
            out = nn.Conv2d.forward(layer, t[2])
            return out.tanh().sum()

        # Check input gradient only (weights go through layer state).
        check_gradients(lambda t: layer(t[0]).tanh().sum(), [rand(1, 2, 4, 5)])

    def test_pooling_layers(self):
        assert nn.AvgPool2d(2)(rand(1, 2, 4, 6)).shape == (1, 2, 2, 3)
        assert nn.MaxPool2d(2)(rand(1, 2, 4, 6)).shape == (1, 2, 2, 3)


class TestNorm:
    def test_batchnorm_normalizes_in_train(self):
        layer = nn.BatchNorm2d(3)
        x = rand(8, 3, 4, 4)
        out = layer(x)
        assert abs(out.data.mean()) < 1e-7
        assert abs(out.data.std() - 1.0) < 1e-2

    def test_batchnorm_tracks_running_stats(self):
        layer = nn.BatchNorm2d(2, momentum=0.5)
        x = Tensor(np.full((4, 2, 3, 3), 10.0))
        layer(x)
        assert np.all(layer.running_mean > 0)

    def test_batchnorm_eval_uses_running_stats(self):
        layer = nn.BatchNorm2d(2)
        for _ in range(20):
            layer(rand(16, 2, 3, 3) * 2.0 + 1.0)
        layer.eval()
        out = layer(rand(4, 2, 3, 3) * 2.0 + 1.0)
        # Should be roughly standardized by the learned running stats.
        assert abs(out.data.mean()) < 0.5

    def test_batchnorm_rejects_3d(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(2)(rand(2, 2, 3))

    def test_layernorm_normalizes_last_axis(self):
        layer = nn.LayerNorm(6)
        out = layer(rand(4, 6))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-7)

    def test_layernorm_grad(self):
        layer = nn.LayerNorm(4)
        check_gradients(lambda t: layer(t[0]).tanh().sum(), [rand(3, 4)])


class TestRecurrent:
    def test_gru_cell_shapes(self):
        cell = nn.GRUCell(3, 5, rng=np.random.default_rng(0))
        h = cell.initial_state(2)
        h2 = cell(rand(2, 3), h)
        assert h2.shape == (2, 5)

    def test_gru_sequence(self):
        layer = nn.GRU(3, 5, rng=np.random.default_rng(0))
        outputs, last = layer(rand(2, 7, 3))
        assert outputs.shape == (2, 7, 5)
        np.testing.assert_allclose(outputs.data[:, -1], last.data)

    def test_lstm_sequence(self):
        layer = nn.LSTM(3, 5, rng=np.random.default_rng(0))
        outputs, (h, c) = layer(rand(2, 7, 3))
        assert outputs.shape == (2, 7, 5)
        assert h.shape == (2, 5)
        assert c.shape == (2, 5)

    def test_lstm_forget_bias_is_one(self):
        cell = nn.LSTMCell(3, 4, rng=np.random.default_rng(0))
        np.testing.assert_allclose(cell.b.data[4:8], 1.0)

    def test_gradients_flow_through_time(self):
        layer = nn.GRU(2, 3, rng=np.random.default_rng(0))
        x = Tensor(RNG.standard_normal((1, 5, 2)), requires_grad=True)
        outputs, _last = layer(x)
        outputs.sum().backward()
        # Early timesteps must receive gradient from late outputs.
        assert np.abs(x.grad[:, 0]).sum() > 0


class TestAttention:
    def test_scaled_dot_product_shapes(self):
        out, weights = nn.scaled_dot_product_attention(rand(2, 4, 8), rand(2, 6, 8), rand(2, 6, 8))
        assert out.shape == (2, 4, 8)
        assert weights.shape == (2, 4, 6)

    def test_attention_weights_sum_to_one(self):
        _out, weights = nn.scaled_dot_product_attention(rand(2, 4, 8), rand(2, 6, 8), rand(2, 6, 8))
        np.testing.assert_allclose(weights.data.sum(axis=-1), 1.0, rtol=1e-9)

    def test_mask_blocks_positions(self):
        mask = np.zeros((1, 4, 6), dtype=bool)
        mask[..., :3] = True
        _out, weights = nn.scaled_dot_product_attention(
            rand(1, 4, 8), rand(1, 6, 8), rand(1, 6, 8), mask=mask
        )
        np.testing.assert_allclose(weights.data[..., 3:], 0.0, atol=1e-6)

    def test_multihead_shapes(self):
        mha = nn.MultiHeadAttention(16, 4, rng=np.random.default_rng(0))
        assert mha(rand(2, 5, 16)).shape == (2, 5, 16)

    def test_multihead_invalid_heads(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(10, 3)


class TestGraph:
    def test_grid_adjacency_lattice(self):
        adj = nn.grid_adjacency(2, 3)
        assert adj.shape == (6, 6)
        # Corner node (0,0) has 2 neighbours.
        assert adj[0].sum() == 2

    def test_grid_adjacency_diagonal(self):
        plain = nn.grid_adjacency(3, 3)
        diag = nn.grid_adjacency(3, 3, diagonal=True)
        assert diag.sum() > plain.sum()

    def test_normalize_adjacency_symmetric(self):
        adj = nn.normalize_adjacency(nn.grid_adjacency(3, 4))
        np.testing.assert_allclose(adj, adj.T)

    def test_normalize_adjacency_rows_bounded(self):
        adj = nn.normalize_adjacency(nn.grid_adjacency(3, 4))
        assert adj.max() <= 1.0 + 1e-12

    def test_graph_conv_shapes(self):
        adj = nn.normalize_adjacency(nn.grid_adjacency(2, 3))
        layer = nn.GraphConv(4, 7, adj, rng=np.random.default_rng(0))
        assert layer(rand(5, 6, 4)).shape == (5, 6, 7)

    def test_cheb_conv_shapes(self):
        adj = nn.grid_adjacency(2, 3)
        layer = nn.ChebConv(4, 7, adj, order=3, rng=np.random.default_rng(0))
        assert layer(rand(5, 6, 4)).shape == (5, 6, 7)

    def test_adaptive_graph_conv(self):
        layer = nn.AdaptiveGraphConv(4, 7, num_nodes=6, rng=np.random.default_rng(0))
        assert layer(rand(5, 6, 4)).shape == (5, 6, 7)
        np.testing.assert_allclose(layer.adjacency().data.sum(axis=-1), 1.0, rtol=1e-9)


class TestSoftmax:
    def test_softmax_sums_to_one(self):
        out = nn.softmax(rand(3, 5), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, rtol=1e-9)

    def test_softmax_stable_for_large_logits(self):
        out = nn.softmax(Tensor(np.array([[1000.0, 999.0]])))
        assert np.all(np.isfinite(out.data))

    def test_log_softmax_matches_log_of_softmax(self):
        x = rand(3, 5)
        np.testing.assert_allclose(
            nn.log_softmax(x).data, np.log(nn.softmax(x).data), rtol=1e-8
        )

    def test_softmax_grad(self):
        check_gradients(lambda t: (nn.softmax(t[0], axis=-1) * Tensor(np.arange(5.0))).sum(), [rand(3, 5)])
