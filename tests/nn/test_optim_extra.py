"""Tests for AdamW, Adagrad, and the warmup schedule."""

import numpy as np
import pytest

from repro import nn, optim
from repro.tensor import Tensor


def quadratic():
    target = np.array([2.0, -1.0])
    w = nn.Parameter(np.zeros(2))

    def loss():
        diff = w - Tensor(target)
        return (diff * diff).sum()

    return w, loss, target


class TestAdamW:
    def test_converges(self):
        w, loss, target = quadratic()
        opt = optim.AdamW([w], lr=0.1, weight_decay=0.0)
        for _ in range(200):
            opt.zero_grad()
            loss().backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-2)

    def test_decay_shrinks_weights_without_gradient_signal(self):
        w = nn.Parameter(np.full(3, 5.0))
        opt = optim.AdamW([w], lr=0.1, weight_decay=0.1)
        for _ in range(10):
            opt.zero_grad()
            (w * Tensor(np.zeros(3))).sum().backward()
            opt.step()
        assert np.all(np.abs(w.data) < 5.0)

    def test_decay_decoupled_from_adaptive_scale(self):
        # With a huge gradient, plain-Adam L2 decay would be normalized
        # away; decoupled decay still shrinks by lr * wd * w each step.
        w = nn.Parameter(np.array([10.0]))
        opt = optim.AdamW([w], lr=0.01, weight_decay=0.5)
        (w * 1000.0).sum().backward()
        before = float(w.data[0])
        opt.step()
        # Step = lr*(m_hat/... ≈ 1) + lr*wd*w = 0.01 + 0.05
        assert before - float(w.data[0]) == pytest.approx(0.06, rel=0.05)


class TestAdagrad:
    def test_converges(self):
        w, loss, target = quadratic()
        opt = optim.Adagrad([w], lr=0.5)
        for _ in range(300):
            opt.zero_grad()
            loss().backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=5e-2)

    def test_effective_rate_decreases(self):
        w = nn.Parameter(np.array([0.0]))
        opt = optim.Adagrad([w], lr=1.0)
        steps = []
        for _ in range(3):
            opt.zero_grad()
            (w * 2.0).sum().backward()
            before = float(w.data[0])
            opt.step()
            steps.append(abs(float(w.data[0]) - before))
        assert steps[0] > steps[1] > steps[2]


class TestWarmupCosine:
    def make(self, warmup=3, total=10):
        w, _loss, _t = quadratic()
        opt = optim.SGD([w], lr=1.0)
        return opt, optim.WarmupCosine(opt, warmup_epochs=warmup, total_epochs=total)

    def test_warmup_ramps_linearly(self):
        opt, sched = self.make()
        sched.step()
        assert opt.lr == pytest.approx(1.0 / 3)
        sched.step()
        assert opt.lr == pytest.approx(2.0 / 3)

    def test_peak_at_end_of_warmup(self):
        opt, sched = self.make()
        for _ in range(3):
            sched.step()
        assert opt.lr == pytest.approx(1.0)

    def test_decays_after_warmup(self):
        opt, sched = self.make()
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)

    def test_invalid_warmup(self):
        opt, _ = self.make()
        with pytest.raises(ValueError):
            optim.WarmupCosine(opt, warmup_epochs=10, total_epochs=10)
