"""Fixtures for the data-parallel engine suite: tiny prepared data."""

import pytest

from repro.data import load_dataset, prepare_forecast_data


@pytest.fixture(scope="session")
def tiny_data():
    """Small prepared ForecastData (16 train samples, 2 batches/epoch)."""
    dataset = load_dataset("nyc-bike", scale="tiny")
    return prepare_forecast_data(dataset, max_train_samples=16,
                                 max_test_samples=8)
