"""Trainer + ParallelEngine: config plumbing, fault tolerance, telemetry.

The sentinel, checkpoint/resume, and profiler must all keep functioning
when ``TrainConfig.workers > 1`` routes the fit through the worker pool.
"""

import multiprocessing

import numpy as np
import pytest

from repro.training import TrainConfig, Trainer
from repro.training.checkpoint import find_latest_checkpoint, load_checkpoint
from repro.training.sentinel import DivergenceError
from tests.robustness.injectors import FaultInjector, ToyForecaster


def _fit(tiny_data, **overrides):
    defaults = dict(epochs=2, batch_size=8, sentinel=None, lr=1e-3)
    defaults.update(overrides)
    model = ToyForecaster(tiny_data)
    trainer = Trainer(model, TrainConfig(**defaults))
    history = trainer.fit(tiny_data)
    return trainer, history


class TestConfigPlumbing:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            TrainConfig(workers=-1)

    def test_workers_zero_keeps_serial_path(self, tiny_data):
        _, history = _fit(tiny_data, workers=0)
        assert history.parallel is None

    def test_parallel_fit_records_telemetry(self, tiny_data):
        trainer, history = _fit(tiny_data, workers=2)
        assert history.parallel["workers"] == 2
        assert history.parallel["steps"] == 4  # 16 samples / 8 * 2 epochs
        assert history.parallel["reduce_count"] == 4
        assert "workers" in history.telemetry_summary()
        assert multiprocessing.active_children() == []
        # Model detached from shared memory and finite after the fit.
        for param in trainer.model.parameters():
            assert param.data.base is None
            assert np.isfinite(param.data).all()


class TestEquivalenceThroughTrainer:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_parallel_fit_matches_serial_fit(self, tiny_data, workers):
        # ToyForecaster's loss ignores the rng, and the parallel path
        # draws the epoch shuffle from the trainer rng exactly like the
        # serial path — so the whole fit (losses, final weights) must
        # agree to float tolerance at every worker count.
        _, serial_history = _fit(tiny_data, workers=0, seed=3)
        _, parallel_history = _fit(tiny_data, workers=workers, seed=3)
        np.testing.assert_allclose(parallel_history.train_loss,
                                   serial_history.train_loss,
                                   rtol=0, atol=1e-9)
        np.testing.assert_allclose(parallel_history.val_rmse,
                                   serial_history.val_rmse,
                                   rtol=0, atol=1e-7)

    def test_same_seed_same_workers_is_reproducible(self, tiny_data):
        _, first = _fit(tiny_data, workers=2, seed=5)
        _, second = _fit(tiny_data, workers=2, seed=5)
        assert first.train_loss == second.train_loss  # bit-equal
        assert first.val_rmse == second.val_rmse


class TestSentinelUnderWorkers:
    def test_nan_loss_raises_through_pool(self, tiny_data):
        # Every worker replica runs the injector's schedule in lockstep
        # (one training_loss call per global step), so a NaN at step 1
        # poisons the *reduced* loss and gradient; the parent-side
        # sentinel must catch it exactly like the serial path.
        model = FaultInjector(ToyForecaster(tiny_data), nan_loss_steps=(1,))
        trainer = Trainer(model, TrainConfig(epochs=2, batch_size=8,
                                             sentinel="raise", workers=2))
        with pytest.raises(DivergenceError):
            trainer.fit(tiny_data)
        assert multiprocessing.active_children() == []

    def test_skip_batch_policy_continues_training(self, tiny_data):
        model = FaultInjector(ToyForecaster(tiny_data), nan_loss_steps=(1,))
        trainer = Trainer(model, TrainConfig(epochs=2, batch_size=8,
                                             sentinel="skip_batch", workers=2))
        history = trainer.fit(tiny_data)
        assert history.epochs_run == 2
        assert history.sentinel["events"]
        assert all(np.isfinite(loss) for loss in history.train_loss)
        assert multiprocessing.active_children() == []


class TestCheckpointUnderWorkers:
    def test_checkpoint_and_resume(self, tiny_data, tmp_path):
        directory = str(tmp_path / "ckpt")
        _, history = _fit(tiny_data, workers=2, epochs=2,
                          checkpoint_dir=directory, checkpoint_every=1)
        assert history.epochs_run == 2
        newest = find_latest_checkpoint(directory)
        assert newest is not None
        # Resume into a longer schedule, still under workers.
        model = ToyForecaster(tiny_data)
        trainer = Trainer(model, TrainConfig(
            epochs=3, batch_size=8, sentinel=None, lr=1e-3, workers=2,
            checkpoint_dir=directory, checkpoint_every=1, resume=True))
        resumed = trainer.fit(tiny_data)
        assert resumed.epochs_run == 3  # 2 restored + 1 new
        assert multiprocessing.active_children() == []


class TestProfilerUnderWorkers:
    def test_profile_ops_records_parallel_counters(self, tiny_data):
        _, history = _fit(tiny_data, workers=2, profile_ops=True)
        profile = history.op_profile
        assert profile["parallel_steps"] == 4
        assert profile["parallel_reduce_s"] >= 0.0
        assert profile["prefetch_stall_s"] >= 0.0
        # Worker replicas silence the parent profiler: training-loop
        # backward work happens in the children, so the parent's op
        # table must only show (forward-only) evaluation ops.
        assert all(stats["backward_calls"] == 0
                   for stats in profile["ops"].values())

    def test_serial_profile_keeps_zero_parallel_counters(self, tiny_data):
        _, history = _fit(tiny_data, workers=0, profile_ops=True)
        assert history.op_profile["parallel_steps"] == 0
        assert history.op_profile["ops"]  # serial path records ops
