"""ParallelEngine: gradient equivalence, determinism, lifecycle.

The equivalence contract (ISSUE 5): for a model whose loss does not
consume the per-step rng, the reduced gradient the engine installs on
``param.grad`` equals the single-process batch gradient within float
summation tolerance — 1e-6 for float32, 1e-12 for float64 — at every
worker count, uneven tails included.  At a fixed seed and worker count
the run is bit-deterministic run-to-run.
"""

import multiprocessing

import numpy as np
import pytest

from repro.data.windows import SampleBatch
from repro.nn import Parameter
from repro.optim import Adam
from repro.parallel import ParallelEngine, ParallelWorkerError, worker_rank
from tests.robustness.injectors import ToyForecaster


def _toy_setup(tiny_data, dtype=np.float64, n=13, seed=0):
    """Model + optimizer + one uneven global batch in ``dtype``."""
    model = ToyForecaster(tiny_data, seed=seed)
    for param in model.parameters():
        param.data = param.data.astype(dtype)
    train = tiny_data.train.astype(dtype)
    batch = train.slice(0, n)
    optimizer = Adam(model.parameters(), lr=1e-3)
    return model, optimizer, train, batch


def _serial_gradient(model, batch):
    """Single-process batch gradient, flattened per parameter."""
    for param in model.parameters():
        param.grad = None
    breakdown, _ = model.training_loss(batch, rng=np.random.default_rng(0))
    breakdown.total.backward()
    grads = [param.grad.copy() for param in model.parameters()]
    loss = float(breakdown.total.item())
    for param in model.parameters():
        param.grad = None
    return grads, loss


def _engine_gradient(model, optimizer, train, batch_size, workers, n):
    """Reduced gradient after one parallel step over samples [0, n)."""
    with ParallelEngine(model, optimizer, train, batch_size, workers) as engine:
        steps = engine.epoch_steps(np.arange(n), epoch=0)
        loss, _reg = next(steps)
        grads = [param.grad.copy() if param.grad is not None else None
                 for param in model.parameters()]
        steps.close()
    return grads, loss


class TestGradientEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 3, 5])
    @pytest.mark.parametrize("dtype,atol", [(np.float32, 1e-6),
                                            (np.float64, 1e-12)])
    def test_reduced_equals_serial_batch_gradient(self, tiny_data, workers,
                                                  dtype, atol):
        n = 13  # indivisible by every worker count above: uneven shards
        model, optimizer, train, batch = _toy_setup(tiny_data, dtype, n=n)
        serial_grads, serial_loss = _serial_gradient(model, batch)
        engine_grads, engine_loss = _engine_gradient(
            model, optimizer, train, batch_size=n, workers=workers, n=n)
        assert engine_loss == pytest.approx(serial_loss, abs=atol * 10)
        for serial, reduced in zip(serial_grads, engine_grads):
            assert reduced is not None
            assert reduced.dtype == np.dtype(dtype)
            np.testing.assert_allclose(reduced, serial, atol=atol, rtol=0)

    def test_bit_deterministic_run_to_run(self, tiny_data):
        n, workers = 13, 3
        results = []
        for _ in range(2):
            model, optimizer, train, _ = _toy_setup(tiny_data, n=n)
            grads, loss = _engine_gradient(model, optimizer, train,
                                           batch_size=n, workers=workers, n=n)
            results.append((grads, loss))
        assert results[0][1] == results[1][1]  # bit-equal loss
        for first, second in zip(results[0][0], results[1][0]):
            np.testing.assert_array_equal(first, second)

    def test_uneven_tail_batch(self, tiny_data):
        # 13 samples at batch_size 8: a full batch then a tail of 5,
        # sharded 3/2 over two workers.  Both steps must yield, and the
        # tail's reduced gradient must match its serial counterpart.
        model, optimizer, train, _ = _toy_setup(tiny_data, n=13)
        tail = train.slice(8, 13)
        serial_grads, serial_loss = _serial_gradient(model, tail)
        with ParallelEngine(model, optimizer, train, 8, 2) as engine:
            outputs = list(engine.epoch_steps(np.arange(13), epoch=0))
            assert len(outputs) == 2
            tail_grads = [param.grad.copy() for param in model.parameters()]
        assert outputs[1][0] == pytest.approx(serial_loss, abs=1e-11)
        for serial, reduced in zip(serial_grads, tail_grads):
            np.testing.assert_allclose(reduced, serial, atol=1e-12, rtol=0)

    def test_unused_parameter_gets_no_gradient(self, tiny_data):
        # A parameter no worker touched must end with grad None —
        # matching the serial path, where backward never visits it.
        model = ToyForecaster(tiny_data)
        model.dead = Parameter(np.zeros(3))
        optimizer = Adam(model.parameters(), lr=1e-3)
        with ParallelEngine(model, optimizer, tiny_data.train, 8, 2) as engine:
            next(steps := engine.epoch_steps(np.arange(8), epoch=0))
            live = [param.grad is not None for param in model.parameters()]
            steps.close()
        assert sum(live) == len(live) - 1
        assert model.dead.grad is None


class TestLifecycle:
    def test_close_restores_private_parameters(self, tiny_data):
        model, optimizer, train, batch = _toy_setup(tiny_data)
        before = [param.data.copy() for param in model.parameters()]
        engine = ParallelEngine(model, optimizer, train, 8, 2)
        engine.start()
        shared = [param.data.base is not None for param in model.parameters()]
        assert all(shared)  # bound into the flat shared buffer
        engine.close()
        for param, original in zip(model.parameters(), before):
            assert param.data.base is None  # private again
            np.testing.assert_array_equal(param.data, original)
        # The model keeps working after the segment is unlinked.
        assert np.isfinite(model.predict(batch)).all()
        assert multiprocessing.active_children() == []

    def test_close_is_idempotent_and_leaves_no_children(self, tiny_data):
        model, optimizer, train, _ = _toy_setup(tiny_data)
        engine = ParallelEngine(model, optimizer, train, 8, 2)
        engine.start()
        engine.close()
        engine.close()
        assert multiprocessing.active_children() == []

    def test_epoch_steps_outside_context_raises(self, tiny_data):
        model, optimizer, train, _ = _toy_setup(tiny_data)
        engine = ParallelEngine(model, optimizer, train, 8, 2)
        with pytest.raises(RuntimeError):
            next(engine.epoch_steps(np.arange(8), epoch=0))
        engine.start()
        engine.close()
        with pytest.raises(RuntimeError):
            next(engine.epoch_steps(np.arange(8), epoch=0))

    def test_abandoned_epoch_keeps_engine_usable(self, tiny_data):
        # Breaking out of an epoch mid-stream (early stop, interrupt)
        # must stop the prefetch producer and leave the pool ready for
        # the next epoch.
        model, optimizer, train, _ = _toy_setup(tiny_data, n=16)
        with ParallelEngine(model, optimizer, train, 4, 2) as engine:
            steps = engine.epoch_steps(np.arange(16), epoch=0)
            next(steps)
            steps.close()  # abandon after 1 of 4 steps
            outputs = list(engine.epoch_steps(np.arange(16), epoch=1))
            assert len(outputs) == 4
        assert multiprocessing.active_children() == []

    def test_telemetry_counters(self, tiny_data):
        model, optimizer, train, _ = _toy_setup(tiny_data, n=16)
        with ParallelEngine(model, optimizer, train, 8, 2) as engine:
            list(engine.epoch_steps(np.arange(16), epoch=0))
            telemetry = engine.telemetry()
        assert telemetry["workers"] == 2
        assert telemetry["steps"] == 2
        assert telemetry["reduce_count"] == 2
        assert telemetry["prefetch_stall_count"] == 2
        assert telemetry["shared_mib"] > 0
        assert len(telemetry["blas_modes"]) == 2
        assert all(isinstance(mode, str) for mode in telemetry["blas_modes"])


class _WorkerBomb:
    """Delegating wrapper that raises — but only inside worker replicas."""

    def __init__(self, model):
        self._model = model

    def __getattr__(self, name):
        return getattr(self._model, name)

    def training_loss(self, batch, rng=None):
        if worker_rank() is not None:
            raise ValueError(f"boom in rank {worker_rank()}")
        return self._model.training_loss(batch, rng=rng)


class TestFailureModes:
    def test_worker_exception_surfaces_as_parallel_error(self, tiny_data):
        model = _WorkerBomb(ToyForecaster(tiny_data))
        optimizer = Adam(model.parameters(), lr=1e-3)
        with pytest.raises(ParallelWorkerError, match="boom in rank"):
            with ParallelEngine(model, optimizer, tiny_data.train, 8, 2) as engine:
                list(engine.epoch_steps(np.arange(8), epoch=0))
        assert multiprocessing.active_children() == []

    def test_constructor_validation(self, tiny_data):
        model = ToyForecaster(tiny_data)
        optimizer = Adam(model.parameters(), lr=1e-3)
        with pytest.raises(ValueError, match="workers"):
            ParallelEngine(model, optimizer, tiny_data.train, 8, 0)
        with pytest.raises(ValueError, match="batch_size"):
            ParallelEngine(model, optimizer, tiny_data.train, 0, 2)
        with pytest.raises(ValueError, match="slots"):
            ParallelEngine(model, optimizer, tiny_data.train, 8, 2, slots=1)

    def test_mixed_parameter_dtypes_rejected(self, tiny_data):
        model = ToyForecaster(tiny_data)
        model.parameters()[0].data = model.parameters()[0].data.astype(np.float32)
        optimizer = Adam(model.parameters(), lr=1e-3)
        with pytest.raises(ValueError, match="uniform parameter dtype"):
            ParallelEngine(model, optimizer, tiny_data.train, 8, 2)

    def test_start_twice_rejected(self, tiny_data):
        model, optimizer, train, _ = _toy_setup(tiny_data)
        engine = ParallelEngine(model, optimizer, train, 8, 1)
        engine.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                engine.start()
        finally:
            engine.close()


def test_worker_rank_is_none_in_parent():
    assert worker_rank() is None
