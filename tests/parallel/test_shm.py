"""SharedArrayBlock: layout, aliasing, and teardown semantics."""

import numpy as np
import pytest

from repro.parallel import SharedArrayBlock


class TestSharedArrayBlock:
    def test_named_views_have_requested_shape_and_dtype(self):
        block = SharedArrayBlock({
            "params": ((6,), np.float32),
            "mask": ((2, 3), np.uint8),
        })
        try:
            assert block["params"].shape == (6,)
            assert block["params"].dtype == np.float32
            assert block["mask"].shape == (2, 3)
            assert block["mask"].dtype == np.uint8
        finally:
            block.close()

    def test_zero_fill(self):
        block = SharedArrayBlock({"grads": ((3, 4), np.float64)}, zero=True)
        try:
            assert not block["grads"].any()
        finally:
            block.close()

    def test_views_share_one_segment(self):
        # Writing through a derived view must be visible through the
        # block's own view: both alias the same mapping, which is what
        # lets forked workers and the parent exchange gradients with no
        # copies.
        block = SharedArrayBlock({"grads": ((2, 4), np.float64)}, zero=True)
        try:
            row = block["grads"][1]
            row[...] = 7.0
            assert block["grads"][1].sum() == 28.0
            assert block["grads"][0].sum() == 0.0
        finally:
            block.close()

    def test_mixed_dtype_arrays_do_not_overlap(self):
        block = SharedArrayBlock({
            "a": ((3,), np.uint8),
            "b": ((2,), np.float64),  # needs 8-byte alignment after 3 bytes
        })
        try:
            block["a"][...] = 255
            block["b"][...] = 1.5
            np.testing.assert_array_equal(block["a"], [255, 255, 255])
            np.testing.assert_array_equal(block["b"], [1.5, 1.5])
        finally:
            block.close()

    def test_close_is_idempotent(self):
        block = SharedArrayBlock({"x": ((4,), np.float64)})
        block.close()
        block.close()  # second call must be a no-op, not an error
        assert block.arrays == {}

    def test_nbytes_covers_spec(self):
        block = SharedArrayBlock({"x": ((8,), np.float64)})
        try:
            assert block.nbytes >= 64
        finally:
            block.close()

    def test_empty_spec_is_valid(self):
        block = SharedArrayBlock({})
        block.close()


class TestLimitBlasThreads:
    def test_returns_mechanism_description(self):
        from repro.parallel import limit_blas_threads

        mode = limit_blas_threads(1)
        assert isinstance(mode, str) and mode
        # Calling again must be safe (workers call it once each, tests
        # may call it many times in one process).
        assert isinstance(limit_blas_threads(1), str)

    def test_rejects_zero_threads(self):
        from repro.parallel import limit_blas_threads

        with pytest.raises(ValueError):
            limit_blas_threads(0)
