"""Deterministic-sharding contract: every worker count partitions each
epoch into the exact single-process sample order — contiguous shards, no
duplicates, no drops, uneven tails included — and the shard weights
reconstruct the batch mean."""

import numpy as np
import pytest

from repro.data.windows import SampleBatch, iterate_batches
from repro.parallel import epoch_batches, shard_bounds, shard_weights


class TestShardBounds:
    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 5, 7, 8])
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 7, 8, 16, 17])
    def test_partitions_range_exactly(self, n, workers):
        bounds = shard_bounds(n, workers)
        assert len(bounds) == workers
        rebuilt = [i for start, stop in bounds for i in range(start, stop)]
        assert rebuilt == list(range(n))  # contiguous, ordered, no dups/drops

    @pytest.mark.parametrize("workers", [2, 3, 4, 5])
    @pytest.mark.parametrize("n", [5, 9, 13, 17])
    def test_balanced_larger_first(self, n, workers):
        sizes = [stop - start for start, stop in shard_bounds(n, workers)]
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)

    def test_short_tail_leaves_empty_shards(self):
        bounds = shard_bounds(2, 4)
        sizes = [stop - start for start, stop in bounds]
        assert sizes == [1, 1, 0, 0]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            shard_bounds(4, 0)
        with pytest.raises(ValueError):
            shard_bounds(-1, 2)


class TestShardWeights:
    @pytest.mark.parametrize("workers", [1, 2, 3, 5])
    @pytest.mark.parametrize("n", [1, 4, 7, 16])
    def test_weights_sum_to_one(self, n, workers):
        bounds = shard_bounds(n, workers)
        weights = shard_weights(bounds, n)
        assert sum(weights) == pytest.approx(1.0)
        for (start, stop), weight in zip(bounds, weights):
            assert weight == (stop - start) / n

    def test_weighted_shard_means_equal_batch_mean(self):
        # The algebraic identity the allreduce relies on, checked on an
        # uneven split: sum_w (n_w / n) * mean(shard_w) == mean(batch).
        rng = np.random.default_rng(0)
        values = rng.normal(size=13)
        bounds = shard_bounds(len(values), 4)
        weights = shard_weights(bounds, len(values))
        recombined = sum(w * values[start:stop].mean()
                         for (start, stop), w in zip(bounds, weights) if w)
        assert recombined == pytest.approx(values.mean(), abs=1e-12)

    def test_empty_batch_gives_zero_weights(self):
        assert shard_weights(shard_bounds(0, 3), 0) == [0.0, 0.0, 0.0]


class TestEpochBatches:
    def _toy_batch(self, n):
        shape = (n, 2, 1, 2, 2)
        return SampleBatch(
            closeness=np.arange(np.prod(shape), dtype=float).reshape(shape),
            period=np.zeros(shape),
            trend=np.zeros(shape),
            target=np.zeros((n, 1, 2, 2)),
            indices=np.arange(n),
        )

    @pytest.mark.parametrize("n,batch_size", [(16, 8), (17, 8), (5, 2), (3, 4)])
    def test_mirrors_iterate_batches(self, n, batch_size):
        # The parallel path draws one shuffle from the trainer rng and
        # slices it with epoch_batches; iterate_batches shuffles with
        # the same rng and slices internally.  Same seed -> the batches
        # must carry identical samples in identical order.
        batch = self._toy_batch(n)
        order = np.arange(n)
        np.random.default_rng(7).shuffle(order)
        parallel_batches = [idx.copy() for idx in epoch_batches(order, batch_size)]
        serial_batches = list(iterate_batches(
            batch, batch_size, rng=np.random.default_rng(7)))
        assert len(parallel_batches) == len(serial_batches)
        for idx, serial in zip(parallel_batches, serial_batches):
            np.testing.assert_array_equal(batch.indices[idx], serial.indices)

    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 6])
    def test_epoch_partition_at_every_worker_count(self, workers):
        # Concatenating every worker's shard of every batch, in rank and
        # step order, must reproduce the epoch order sample-for-sample.
        n, batch_size = 17, 8  # uneven tail batch of 1
        order = np.arange(n)
        np.random.default_rng(3).shuffle(order)
        seen = []
        for idx in epoch_batches(order, batch_size):
            for start, stop in shard_bounds(len(idx), workers):
                seen.extend(idx[start:stop])
        np.testing.assert_array_equal(np.array(seen), order)
