"""max_pool2d's backward state must be lazy (ISSUE 5 satellite).

The tie mask and gradient-share arrays are ``kh * kw`` times the pooled
output's footprint; computing them on a forward that will never run
backward (evaluation under ``no_grad``, detached inputs) wastes both
time and memory.  These tests pin the lazy behaviour with an actual
allocation measurement — they fail on the eager seed implementation.
"""

import tracemalloc

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad
from repro.tensor.conv import max_pool2d

# (4, 8, 64, 64) float64 pooled 2x2: the eager mask+share pair costs
# ~1.1 MiB (1 MiB float64 share + 128 KiB bool mask); the output is
# 256 KiB.  A lazy forward must stay well under the share's footprint.
_SHAPE = (4, 8, 64, 64)
_SHARE_BYTES = int(np.prod(_SHAPE)) * 8  # 6-D share == input elems * kh*kw / (sh*sw)


def _forward_peak_bytes(x):
    """Peak python-side allocation during one max_pool2d forward."""
    tracemalloc.start()
    try:
        out = max_pool2d(x, 2)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return out, peak


class TestLazyMask:
    def test_no_grad_forward_skips_mask_allocation(self):
        x = Tensor(np.random.default_rng(0).normal(size=_SHAPE),
                   requires_grad=True)
        with no_grad():
            out, peak = _forward_peak_bytes(x)
        assert out._backward is None  # detached: nothing to run backward
        assert peak < _SHARE_BYTES // 2

    def test_detached_input_skips_mask_allocation(self):
        x = Tensor(np.random.default_rng(0).normal(size=_SHAPE))  # no grad
        out, peak = _forward_peak_bytes(x)
        assert out._backward is None
        assert peak < _SHARE_BYTES // 2

    def test_grad_forward_still_allocates_and_backprops(self):
        x = Tensor(np.random.default_rng(0).normal(size=_SHAPE),
                   requires_grad=True)
        out, peak = _forward_peak_bytes(x)
        assert out._backward is not None
        assert peak > _SHARE_BYTES  # mask + share really were materialised
        out.sum().backward()
        assert x.grad is not None
        # Each pooling window routes exactly its output's gradient.
        np.testing.assert_allclose(x.grad.sum(), out.data.size)

    def test_tie_splitting_unchanged(self):
        # Lazy construction must not change gradient semantics: a
        # four-way tie splits the window's gradient evenly.
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        out = max_pool2d(x, 2)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 2, 2), 0.25))

    def test_values_identical_with_and_without_grad(self):
        data = np.random.default_rng(1).normal(size=(2, 3, 8, 8))
        with no_grad():
            eval_out = max_pool2d(Tensor(data, requires_grad=True), 2)
        train_out = max_pool2d(Tensor(data, requires_grad=True), 2)
        np.testing.assert_array_equal(eval_out.data, train_out.data)
