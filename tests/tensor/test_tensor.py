"""Tests for the core Tensor graph machinery."""

import numpy as np
import pytest

from repro.tensor import Tensor, as_tensor, no_grad, is_grad_enabled


class TestConstruction:
    def test_from_list_uses_default_dtype(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float64

    def test_preserves_float32(self):
        t = Tensor(np.zeros(3, dtype=np.float32))
        assert t.dtype == np.float32

    def test_from_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert b.data is a.data

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24

    def test_repr_mentions_grad(self):
        t = Tensor([1.0], requires_grad=True, name="w")
        assert "requires_grad" in repr(t)
        assert "w" in repr(t)

    def test_as_tensor_passthrough(self):
        a = Tensor([1.0])
        assert as_tensor(a) is a

    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5


class TestBackward:
    def test_scalar_backward_defaults_to_one(self):
        x = Tensor(3.0, requires_grad=True)
        y = x * x
        y.backward()
        assert np.isclose(x.grad, 6.0)

    def test_nonscalar_backward_requires_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2
        with pytest.raises(RuntimeError):
            y.backward()

    def test_backward_on_detached_raises(self):
        x = Tensor([1.0])
        with pytest.raises(RuntimeError):
            x.backward()

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(2.0, requires_grad=True)
        (x * 3).backward()
        (x * 3).backward()
        assert np.isclose(x.grad, 6.0)

    def test_zero_grad(self):
        x = Tensor(2.0, requires_grad=True)
        (x * 3).backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        # y = x*x + x*x: gradient should be 4x, not 2x.
        x = Tensor(3.0, requires_grad=True)
        a = x * x
        y = a + a
        y.backward()
        assert np.isclose(x.grad, 12.0)

    def test_shared_subexpression(self):
        x = Tensor(2.0, requires_grad=True)
        s = x * 3
        y = s * s  # y = 9 x^2, dy/dx = 18x = 36
        y.backward()
        assert np.isclose(x.grad, 36.0)

    def test_deep_chain_does_not_recurse(self):
        # Deeper than Python's default recursion limit.
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(2000):
            y = y * 1.0
        y.backward()
        assert np.isclose(x.grad, 1.0)

    def test_gradient_shape_mismatch_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            x._accumulate_grad(np.zeros((3,)))


class TestNoGrad:
    def test_disables_tracking(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 2
        assert not b.requires_grad

    def test_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_restores_on_exception(self):
        try:
            with no_grad():
                raise ValueError
        except ValueError:
            pass
        assert is_grad_enabled()

    def test_new_tensor_inside_no_grad_is_detached(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad


class TestDetachCopy:
    def test_detach_shares_data(self):
        a = Tensor([1.0], requires_grad=True)
        d = a.detach()
        assert d.data is a.data
        assert not d.requires_grad

    def test_copy_is_independent(self):
        a = Tensor([1.0])
        c = a.copy()
        c.data[0] = 5.0
        assert a.data[0] == 1.0

    def test_detach_cuts_graph(self):
        x = Tensor(2.0, requires_grad=True)
        y = (x * 3).detach() * x
        y.backward()
        assert np.isclose(x.grad, 6.0)  # only through the second factor

    def test_item_and_numpy(self):
        t = Tensor(7.5)
        assert t.item() == 7.5
        assert isinstance(t.numpy(), np.ndarray)

    def test_astype(self):
        t = Tensor([1.0]).astype(np.float32)
        assert t.dtype == np.float32
