"""Hypothesis property tests for autodiff invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import tensor as T
from repro.tensor import Tensor

FLOATS = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=5),
    elements=st.floats(-10.0, 10.0, allow_nan=False),
)


@given(FLOATS)
@settings(max_examples=50, deadline=None)
def test_sum_gradient_is_ones(arr):
    x = Tensor(arr, requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(arr))


@given(FLOATS)
@settings(max_examples=50, deadline=None)
def test_mean_gradient_is_uniform(arr):
    x = Tensor(arr, requires_grad=True)
    x.mean().backward()
    np.testing.assert_allclose(x.grad, np.full_like(arr, 1.0 / arr.size))


@given(FLOATS)
@settings(max_examples=50, deadline=None)
def test_linearity_of_gradients(arr):
    # grad of (a*f + b*g) equals a*grad(f) + b*grad(g).
    x1 = Tensor(arr, requires_grad=True)
    (x1.tanh().sum() * 2.0 + x1.sigmoid().sum() * 3.0).backward()

    xa = Tensor(arr, requires_grad=True)
    xa.tanh().sum().backward()
    xb = Tensor(arr, requires_grad=True)
    xb.sigmoid().sum().backward()

    np.testing.assert_allclose(x1.grad, 2.0 * xa.grad + 3.0 * xb.grad, rtol=1e-9, atol=1e-12)


@given(FLOATS)
@settings(max_examples=50, deadline=None)
def test_reshape_round_trip_gradient(arr):
    x = Tensor(arr, requires_grad=True)
    T.reshape(T.reshape(x, (-1,)), arr.shape).tanh().sum().backward()

    y = Tensor(arr, requires_grad=True)
    y.tanh().sum().backward()
    np.testing.assert_allclose(x.grad, y.grad)


@given(FLOATS)
@settings(max_examples=50, deadline=None)
def test_add_commutes(arr):
    x = Tensor(arr)
    y = Tensor(arr[::-1].copy() if arr.ndim == 1 else arr)
    np.testing.assert_allclose(T.add(x, y).data, T.add(y, x).data)


@given(FLOATS)
@settings(max_examples=50, deadline=None)
def test_exp_log_inverse(arr):
    x = Tensor(np.abs(arr) + 0.5)
    np.testing.assert_allclose(T.log(T.exp(x)).data, x.data, rtol=1e-9)


@given(FLOATS)
@settings(max_examples=50, deadline=None)
def test_relu_idempotent(arr):
    x = Tensor(arr)
    once = T.relu(x)
    twice = T.relu(once)
    np.testing.assert_allclose(once.data, twice.data)


@given(FLOATS)
@settings(max_examples=50, deadline=None)
def test_sigmoid_bounded(arr):
    out = T.sigmoid(Tensor(arr)).data
    assert np.all(out >= 0.0)
    assert np.all(out <= 1.0)


@given(FLOATS)
@settings(max_examples=50, deadline=None)
def test_max_ge_mean_ge_min(arr):
    x = Tensor(arr)
    assert T.max_(x).item() >= T.mean(x).item() - 1e-12
    assert T.mean(x).item() >= T.min_(x).item() - 1e-12


@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 3), st.integers(1, 4), st.integers(1, 4)),
        elements=st.floats(-5.0, 5.0, allow_nan=False),
    )
)
@settings(max_examples=30, deadline=None)
def test_matmul_associativity_with_identity(arr):
    x = Tensor(arr)
    eye = Tensor(np.eye(arr.shape[-1]))
    np.testing.assert_allclose((x @ eye).data, arr, atol=1e-12)


@given(FLOATS, st.integers(0, 10))
@settings(max_examples=40, deadline=None)
def test_no_grad_matches_forward(arr, seed):
    x = Tensor(arr, requires_grad=True)
    tracked = x.tanh().sum().item()
    with T.no_grad():
        untracked = x.tanh().sum().item()
    assert tracked == untracked
