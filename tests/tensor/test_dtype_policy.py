"""Tests for the compute-precision policy (set/default_dtype wiring)."""

import numpy as np
import pytest

from repro.nn import Conv2d
from repro.nn import init
from repro.nn.losses import mse_loss
from repro.tensor import (
    Tensor,
    as_tensor,
    default_dtype,
    get_default_dtype,
    set_default_dtype,
    tanh,
)
from repro.tensor.gradcheck import check_gradients


class TestPolicyScoping:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64

    def test_scoped_policy_applies_and_restores(self):
        with default_dtype(np.float32):
            assert get_default_dtype() == np.float32
            assert Tensor([1.0, 2.0]).data.dtype == np.float32
        assert get_default_dtype() == np.float64
        assert Tensor([1.0, 2.0]).data.dtype == np.float64

    def test_scope_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with default_dtype(np.float32):
                raise RuntimeError("boom")
        assert get_default_dtype() == np.float64

    def test_set_default_dtype_rejects_non_float(self):
        with pytest.raises((TypeError, ValueError)):
            set_default_dtype(np.int64)

    def test_explicit_ndarray_dtype_wins_over_policy(self):
        # An ndarray already carries a precision decision; the policy
        # only governs data that doesn't.
        with default_dtype(np.float32):
            t = Tensor(np.ones(3, dtype=np.float64))
            assert t.data.dtype == np.float64

    def test_policy_dtype_parameters_from_init(self):
        with default_dtype(np.float32):
            rng = np.random.default_rng(0)
            assert init.zeros((4,)).dtype == np.float32
            assert init.glorot_uniform((3, 3), rng).dtype == np.float32


class TestScalarCoercion:
    def test_python_scalar_follows_operand_dtype(self):
        x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        for result in (x * 0.5, 0.5 * x, x + 1.0, x / 2.0, x - 0.25):
            assert result.data.dtype == np.float32, result.data.dtype

    def test_as_tensor_hint_only_applies_to_scalars(self):
        assert as_tensor(0.5, dtype=np.float32).data.dtype == np.float32
        # ndarrays keep their own dtype regardless of the hint.
        arr = np.ones(2, dtype=np.float64)
        assert as_tensor(arr, dtype=np.float32).data.dtype == np.float64

    def test_scalar_coercion_backward_keeps_dtype(self):
        x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        loss = ((x * 0.5 + 1.0) ** 2).sum()
        loss.backward()
        assert x.grad.dtype == np.float32


class TestFloat32EndToEnd:
    def test_conv_losses_forward_backward_stay_float32(self):
        rng = np.random.default_rng(0)
        with default_dtype(np.float32):
            conv = Conv2d(2, 4, kernel_size=3, padding=1, rng=rng)
            x = Tensor(rng.standard_normal((2, 2, 6, 6)).astype(np.float32),
                       requires_grad=True)
            target = Tensor(rng.standard_normal((2, 4, 6, 6)).astype(np.float32))
            out = tanh(conv(x))
            assert out.data.dtype == np.float32
            loss = mse_loss(out, target) * 0.5 + 1.0 - 1.0
            assert loss.data.dtype == np.float32
            loss.backward()
        assert x.grad.dtype == np.float32
        for p in conv.parameters():
            assert p.grad.dtype == np.float32

    def test_grad_buffer_downcasts_float64_upstream(self):
        # A float64 upstream gradient must not silently widen a float32
        # parameter's accumulated gradient.
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        y = x.sum()
        y.backward(np.float64(1.0))
        assert x.grad.dtype == np.float32


class TestAstype:
    def test_astype_keeps_name(self):
        t = Tensor(np.ones(2), name="weights")
        assert t.astype(np.float32).name == "weights"
        assert t.astype(np.float32).data.dtype == np.float32


class TestGradcheckPinned:
    def test_gradcheck_is_float64_even_under_float32_policy(self):
        # Finite differences need float64; check_gradients must pin its
        # own precision regardless of the ambient policy.
        rng = np.random.default_rng(0)
        with default_dtype(np.float32):
            x = Tensor(list(rng.standard_normal(5)), requires_grad=True, name="x")
            assert x.data.dtype == np.float32
            assert check_gradients(lambda ts: (ts[0] * ts[0]).sum(), [x])
