"""Edge-case tests for the autodiff engine."""

import numpy as np
import pytest

from repro import tensor as T
from repro.tensor import Tensor, check_gradients


class TestScalarsAndEmpties:
    def test_zero_dim_tensor_ops(self):
        x = Tensor(2.0, requires_grad=True)
        y = (x * x + x).exp().log()  # identity composition: y = x^2 + x
        y.backward()
        np.testing.assert_allclose(x.grad, 5.0)  # 2x + 1 at x = 2

    def test_size_one_axes(self):
        check_gradients(
            lambda t: (t[0] * t[1]).sum(),
            [Tensor(np.random.default_rng(0).standard_normal((1, 3, 1))),
             Tensor(np.random.default_rng(1).standard_normal((4, 1, 2)))],
        )

    def test_sum_of_empty_axis_slice(self):
        x = Tensor(np.zeros((3, 0)))
        assert T.sum_(x).item() == 0.0

    def test_concat_single_tensor(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        out = T.concat([x], axis=0)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, 1.0)


class TestDtypePropagation:
    def test_float32_stays_float32(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32))
        y = Tensor(np.ones((2, 2), dtype=np.float32))
        assert (x @ y).dtype == np.float32
        assert T.tanh(x).dtype == np.float32

    def test_mixed_promotes(self):
        x = Tensor(np.ones(2, dtype=np.float32))
        y = Tensor(np.ones(2, dtype=np.float64))
        assert (x + y).dtype == np.float64

    def test_int_input_converted(self):
        assert Tensor(np.arange(3)).dtype == np.float64


class TestGraphReuse:
    def test_same_tensor_used_many_times(self):
        x = Tensor(2.0, requires_grad=True)
        terms = [x * float(i) for i in range(1, 6)]
        total = terms[0]
        for term in terms[1:]:
            total = total + term
        total.backward()
        np.testing.assert_allclose(x.grad, 15.0)

    def test_backward_twice_through_fresh_graphs(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        first = x.grad.copy()
        x.zero_grad()
        (x * 3).sum().backward()
        np.testing.assert_allclose(first, 2.0)
        np.testing.assert_allclose(x.grad, 3.0)

    def test_grad_not_tracked_through_grad(self):
        # Gradients are plain arrays, never Tensors with history.
        x = Tensor(np.ones(3), requires_grad=True)
        (x * x).sum().backward()
        assert isinstance(x.grad, np.ndarray)


class TestNumericalStability:
    def test_softmax_composition_with_tiny_values(self):
        from repro.nn import softmax

        x = Tensor(np.full((2, 4), -1e6))
        out = softmax(x)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0)

    def test_log_of_softplus_stable(self):
        x = Tensor(np.array([-50.0, 0.0, 50.0]))
        out = T.log(T.softplus(x) + 1e-12)
        assert np.all(np.isfinite(out.data))

    def test_division_gradient_large_denominator(self):
        check_gradients(
            lambda t: (t[0] / 1e8).sum() * 1e8,
            [Tensor(np.random.default_rng(0).standard_normal(4))],
        )


class TestConvEdges:
    def test_kernel_equals_input_size(self):
        rng = np.random.default_rng(0)
        check_gradients(
            lambda t: T.conv2d(t[0], t[1]).sum(),
            [Tensor(rng.standard_normal((1, 2, 3, 3))),
             Tensor(rng.standard_normal((4, 2, 3, 3)))],
        )

    def test_1x1_kernel_is_channel_mix(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 3, 4, 4))
        w = rng.standard_normal((2, 3, 1, 1))
        out = T.conv2d(Tensor(x), Tensor(w))
        expected = np.einsum("nchw,oc->nohw", x, w[:, :, 0, 0])
        np.testing.assert_allclose(out.data, expected, rtol=1e-12)

    def test_asymmetric_input(self):
        rng = np.random.default_rng(0)
        out = T.conv2d(Tensor(rng.standard_normal((2, 1, 3, 9))),
                       Tensor(rng.standard_normal((1, 1, 3, 3))), padding=1)
        assert out.shape == (2, 1, 3, 9)
