"""Tests for tape lifecycle management and the op profiler."""

import numpy as np
import pytest

from repro.profiling import OpProfiler, format_op_summary, get_active_profiler, profile
from repro.tensor import Tensor, check_gradients, conv2d, matmul


def build_graph():
    """Small conv + matmul graph; returns (loss, intermediates, leaves)."""
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((2, 3, 6, 6)), requires_grad=True)
    w = Tensor(rng.standard_normal((4, 3, 3, 3)), requires_grad=True)
    hidden = conv2d(x, w, padding=1)
    activated = hidden.relu()
    loss = activated.sum()
    return loss, [hidden, activated], [x, w]


class TestTapeLifecycle:
    def test_backward_frees_closures_and_parents(self):
        loss, intermediates, leaves = build_graph()
        assert all(t._backward is not None for t in intermediates)
        loss.backward()
        for node in intermediates + [loss]:
            assert node._backward is None
            assert node._parents == ()
            assert node._freed
        # Leaves never carried closures and keep their gradients.
        for leaf in leaves:
            assert leaf.grad is not None
            assert not leaf._freed

    def test_retain_graph_preserves_tape(self):
        loss, intermediates, leaves = build_graph()
        loss.backward(retain_graph=True)
        for node in intermediates:
            assert node._backward is not None
            assert node._parents != ()
            assert not node._freed
        # A second backward over the retained tape reproduces the same
        # gradients once every node's accumulator is cleared.
        first = [leaf.grad.copy() for leaf in leaves]
        for node in intermediates + leaves + [loss]:
            node.zero_grad()
        loss.backward()
        for leaf, grad in zip(leaves, first):
            np.testing.assert_allclose(leaf.grad, grad)

    def test_second_backward_after_free_raises(self):
        loss, _intermediates, _leaves = build_graph()
        loss.backward()
        with pytest.raises(RuntimeError, match="freed"):
            loss.backward()

    def test_freeing_does_not_change_gradients(self):
        # Same graph twice: freed vs retained must agree exactly.
        loss_a, _, leaves_a = build_graph()
        loss_a.backward()
        loss_b, _, leaves_b = build_graph()
        loss_b.backward(retain_graph=True)
        for a, b in zip(leaves_a, leaves_b):
            np.testing.assert_array_equal(a.grad, b.grad)

    def test_gradcheck_passes_with_freeing(self):
        # check_gradients calls backward() (default: freeing on) and
        # compares against finite differences.
        rng = np.random.default_rng(1)
        a = Tensor(rng.standard_normal((4, 3)))
        b = Tensor(rng.standard_normal((3, 2)))
        assert check_gradients(lambda t: (matmul(t[0], t[1]).tanh()).sum(), [a, b])


class TestOpProfiler:
    def test_disabled_by_default(self):
        assert get_active_profiler() is None
        loss, _, _ = build_graph()
        loss.backward()
        assert get_active_profiler() is None

    def test_records_forward_and_backward(self):
        with profile() as prof:
            loss, _, _ = build_graph()
            loss.backward()
        stats = prof.stats
        for name in ("conv2d", "relu", "sum"):
            assert stats[name].calls == 1
            assert stats[name].backward_calls == 1
            assert stats[name].forward_s >= 0.0
            assert stats[name].backward_s >= 0.0
        assert stats["conv2d"].output_bytes == 2 * 4 * 6 * 6 * 8
        assert prof.total_forward_s >= 0.0
        assert prof.total_backward_s > 0.0

    def test_tape_accounting_peaks_then_drains(self):
        with profile() as prof:
            loss, _, _ = build_graph()
            assert prof.tape_bytes > 0
            peak_before_backward = prof.peak_tape_bytes
            loss.backward()
        assert prof.tape_bytes == 0
        assert prof.peak_tape_bytes == peak_before_backward > 0

    def test_retained_graph_keeps_tape_bytes(self):
        with profile() as prof:
            loss, _, _ = build_graph()
            loss.backward(retain_graph=True)
            assert prof.tape_bytes > 0
            # Two live graphs: peak should roughly double.
            loss2, _, _ = build_graph()
            loss2.backward(retain_graph=True)
        assert prof.peak_tape_bytes >= 2 * loss.data.nbytes  # trivially true
        assert prof.tape_bytes == prof.peak_tape_bytes

    def test_freeing_halves_two_step_peak(self):
        def run(retain_graph):
            prof = OpProfiler()
            with profile(prof):
                held = build_graph()[0]
                held.backward(retain_graph=retain_graph)
                held2 = build_graph()[0]  # noqa: F841 — keeps graph 2 alive
                held2.backward(retain_graph=retain_graph)
            return prof.peak_tape_bytes

        freed = run(False)
        retained = run(True)
        assert retained == 2 * freed

    def test_nesting_restores_previous(self):
        with profile() as outer:
            with profile() as inner:
                assert get_active_profiler() is inner
            assert get_active_profiler() is outer
        assert get_active_profiler() is None

    def test_accumulates_across_blocks(self):
        prof = OpProfiler()
        with profile(prof):
            build_graph()
        with profile(prof):
            build_graph()
        assert prof.stats["conv2d"].calls == 2

    def test_no_grad_ops_recorded_off_tape(self):
        from repro.tensor import no_grad

        with profile() as prof:
            with no_grad():
                Tensor(np.ones((2, 2))).relu()
        assert prof.stats["relu"].calls == 1
        assert prof.tape_bytes == 0

    def test_as_dict_and_summary(self):
        with profile() as prof:
            loss, _, _ = build_graph()
            loss.backward()
        snapshot = prof.as_dict()
        assert set(snapshot) == {"ops", "total_forward_s", "total_backward_s",
                                 "peak_tape_bytes", "grad_alloc_bytes",
                                 "optimizer_alloc_bytes", "optimizer_steps",
                                 "parallel_steps", "parallel_reduce_s",
                                 "prefetch_stall_s", "serve_batches",
                                 "serve_batch_s", "serve_requests",
                                 "serve_queue_wait_s", "serve_cache_hits",
                                 "serve_cache_misses",
                                 "forward_alloc_bytes",
                                 "compile_plans", "compile_plan_s",
                                 "arena_bytes", "arena_reuse_pct",
                                 "compiled_steps", "stream_ticks",
                                 "stream_gap_fills", "stream_quarantined",
                                 "stream_drifts", "stream_retrains",
                                 "stream_retrain_s", "stream_fallbacks"}
        assert snapshot["grad_alloc_bytes"] > 0
        assert snapshot["ops"]["conv2d"]["calls"] == 1
        rendered = format_op_summary(snapshot, limit=2)
        assert "conv2d" in rendered
        assert "peak tape" in rendered
        assert "omitted" in rendered  # 3 ops, limit 2
        assert prof.summary()  # full render also works

    def test_reset_clears_everything(self):
        with profile() as prof:
            loss, _, _ = build_graph()
            loss.backward()
            prof.reset()
        assert prof.stats == {}
        assert prof.tape_bytes == 0
        assert prof.peak_tape_bytes == 0


class TestGradModeIsThreadLocal:
    """``no_grad`` on one thread must not switch off another's tape.

    Seeded bug: the grad-enabled flag was a process-global, so a
    serving thread evaluating inside ``no_grad()`` raced a concurrent
    training step — the step's forward recorded no tape and
    ``backward()`` blew up with "does not require grad".  Found by the
    sanitizer-stressed drift-retrain test; the flag is now per-thread.
    """

    def test_no_grad_on_another_thread_leaves_tape_recording_on(self):
        import threading

        from repro.tensor import is_grad_enabled, no_grad

        inside = threading.Event()
        release = threading.Event()

        def eval_thread():
            with no_grad():
                inside.set()
                release.wait(timeout=10.0)

        worker = threading.Thread(target=eval_thread, daemon=True)
        worker.start()
        assert inside.wait(timeout=10.0)
        try:
            # The eval thread is parked *inside* no_grad right now;
            # with a process-global flag this forward records nothing
            # and backward() raises.
            assert is_grad_enabled()
            loss, _, leaves = build_graph()
            loss.backward()
            assert all(leaf.grad is not None for leaf in leaves)
        finally:
            release.set()
            worker.join(timeout=10.0)
        assert not worker.is_alive()

    def test_no_grad_still_restores_state_on_its_own_thread(self):
        from repro.tensor import is_grad_enabled, no_grad

        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()
