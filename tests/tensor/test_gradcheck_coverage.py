"""Every registered differentiable op has a passing gradcheck case.

The op universe is discovered from the tensor modules' ``__all__``
(never hand-listed), so adding an op without a gradcheck case in
:mod:`repro.inspect.gradcov` fails ``test_every_registered_op_has_a_case``
before the op can ship unverified.
"""

import pytest

from repro.inspect.gradcov import (
    OP_MODULES,
    gradcheck_cases,
    registered_ops,
    uncovered_ops,
)
from repro.tensor import check_gradients

_CASES = gradcheck_cases()


class TestCoverage:
    def test_discovery_finds_the_full_op_surface(self):
        registry = registered_ops()
        assert len(registry) == 48
        assert set(registry.values()) <= set(OP_MODULES)
        # Spot-check each module contributes.
        assert registry["matmul"] == "repro.tensor.matmul"
        assert registry["conv2d"] == "repro.tensor.conv"
        assert registry["logsumexp"] == "repro.tensor.reductions"
        assert registry["pad"] == "repro.tensor.shape"
        assert registry["softplus"] == "repro.tensor.ops"

    def test_every_registered_op_has_a_case(self):
        assert uncovered_ops() == [], (
            "ops without a gradcheck case; add them to "
            "repro.inspect.gradcov.gradcheck_cases()")

    def test_no_stale_cases_for_unregistered_ops(self):
        assert set(_CASES) <= set(registered_ops())


@pytest.mark.parametrize("op_name", sorted(_CASES))
def test_gradcheck_passes(op_name):
    fn, inputs = _CASES[op_name]
    assert check_gradients(fn, inputs), f"gradcheck failed for {op_name!r}"
