"""Gradient checks for reductions, shape ops, matmul, and conv."""

import numpy as np
import pytest

from repro import tensor as T
from repro.tensor import Tensor, check_gradients

RNG = np.random.default_rng(7)


def rand(*shape, low=-2.0, high=2.0):
    return Tensor(RNG.uniform(low, high, size=shape))


class TestReductions:
    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True), ((0, 2), False)])
    def test_sum(self, axis, keepdims):
        check_gradients(lambda t: T.sum_(t[0], axis=axis, keepdims=keepdims).sum(), [rand(2, 3, 4)])

    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (-1, True)])
    def test_mean(self, axis, keepdims):
        check_gradients(lambda t: T.mean(t[0], axis=axis, keepdims=keepdims).sum(), [rand(2, 3, 4)])

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_max(self, axis):
        check_gradients(lambda t: T.max_(t[0], axis=axis).sum(), [rand(3, 5)])

    def test_max_tie_splits_gradient(self):
        x = Tensor([[2.0, 2.0, 1.0]], requires_grad=True)
        T.max_(x, axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5, 0.0]])

    def test_min(self):
        check_gradients(lambda t: T.min_(t[0], axis=1).sum(), [rand(3, 5)])

    def test_var_matches_numpy(self):
        x = rand(4, 6)
        np.testing.assert_allclose(T.var(x, axis=1).data, x.data.var(axis=1), rtol=1e-10)

    def test_var_grad(self):
        check_gradients(lambda t: T.var(t[0], axis=0).sum(), [rand(4, 3)])

    def test_std_with_eps(self):
        x = Tensor(np.zeros((3, 3)))
        out = T.std(x, axis=1, eps=1e-8)
        assert np.all(np.isfinite(out.data))

    def test_logsumexp_matches_scipy(self):
        from scipy.special import logsumexp as sp_lse

        x = rand(3, 6)
        np.testing.assert_allclose(T.logsumexp(x, axis=1).data, sp_lse(x.data, axis=1), rtol=1e-10)

    def test_logsumexp_grad(self):
        check_gradients(lambda t: T.logsumexp(t[0], axis=1).sum(), [rand(3, 6)])

    def test_logsumexp_stable_for_large_inputs(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        out = T.logsumexp(x, axis=1)
        np.testing.assert_allclose(out.data, [1000.0 + np.log(2.0)])


class TestShapeOps:
    def test_reshape_grad(self):
        check_gradients(lambda t: T.reshape(t[0], (6, 2)).tanh().sum(), [rand(3, 4)])

    def test_transpose_grad(self):
        check_gradients(lambda t: T.transpose(t[0], (2, 0, 1)).tanh().sum(), [rand(2, 3, 4)])

    def test_transpose_default_reverses(self):
        x = rand(2, 3, 4)
        assert T.transpose(x).shape == (4, 3, 2)

    def test_swapaxes(self):
        x = rand(2, 3, 4)
        assert T.swapaxes(x, 0, 2).shape == (4, 3, 2)

    def test_flatten(self):
        x = rand(2, 3, 4)
        assert T.flatten(x, start_axis=1).shape == (2, 12)

    def test_concat_grad(self):
        check_gradients(
            lambda t: T.concat([t[0], t[1]], axis=1).tanh().sum(),
            [rand(3, 2), rand(3, 5)],
        )

    def test_stack_grad(self):
        check_gradients(
            lambda t: T.stack([t[0], t[1]], axis=0).tanh().sum(),
            [rand(3, 2), rand(3, 2)],
        )

    def test_split_round_trip(self):
        x = rand(6, 4)
        parts = T.split(x, 3, axis=0)
        assert len(parts) == 3
        np.testing.assert_allclose(np.concatenate([p.data for p in parts]), x.data)

    def test_split_uneven_raises(self):
        with pytest.raises(ValueError):
            T.split(rand(5, 2), 2, axis=0)

    def test_getitem_grad(self):
        check_gradients(lambda t: t[0][1:, ::2].sum(), [rand(4, 6)])

    def test_getitem_integer_array(self):
        x = Tensor(np.arange(12, dtype=float).reshape(4, 3), requires_grad=True)
        idx = np.array([0, 0, 2])
        out = x[idx]
        out.sum().backward()
        expected = np.zeros((4, 3))
        expected[0] = 2.0
        expected[2] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_pad_grad(self):
        check_gradients(lambda t: T.pad(t[0], ((1, 1), (0, 2))).tanh().sum(), [rand(3, 4)])

    def test_pad_values(self):
        x = Tensor(np.ones((2, 2)))
        out = T.pad(x, ((1, 0), (0, 0)), value=5.0)
        np.testing.assert_allclose(out.data[0], [5.0, 5.0])

    def test_broadcast_to_grad(self):
        check_gradients(lambda t: T.broadcast_to(t[0], (4, 3, 2)).tanh().sum(), [rand(3, 2)])

    def test_squeeze_expand(self):
        x = rand(1, 3, 1)
        assert T.squeeze(x).shape == (3,)
        assert T.expand_dims(rand(3), 0).shape == (1, 3)

    def test_flip_grad(self):
        check_gradients(lambda t: T.flip(t[0], axis=1).tanh().sum(), [rand(3, 4)])

    def test_repeat_interleave_grad(self):
        check_gradients(lambda t: T.repeat_interleave(t[0], 3, axis=1).tanh().sum(), [rand(2, 4)])

    def test_tile_grad(self):
        check_gradients(lambda t: T.tile(t[0], (2, 3)).tanh().sum(), [rand(2, 4)])

    def test_tile_adds_axes(self):
        x = rand(3)
        assert T.tile(x, (2, 2)).shape == (2, 6)


class TestMatmul:
    def test_2d_grad(self):
        check_gradients(lambda t: (t[0] @ t[1]).tanh().sum(), [rand(3, 4), rand(4, 5)])

    def test_batched_grad(self):
        check_gradients(lambda t: (t[0] @ t[1]).tanh().sum(), [rand(2, 3, 4), rand(2, 4, 5)])

    def test_batched_broadcast_rhs(self):
        check_gradients(lambda t: (t[0] @ t[1]).tanh().sum(), [rand(2, 3, 4), rand(4, 5)])

    def test_vector_rhs(self):
        check_gradients(lambda t: (t[0] @ t[1]).tanh().sum(), [rand(3, 4), rand(4)])

    def test_vector_lhs(self):
        check_gradients(lambda t: (t[0] @ t[1]).tanh().sum(), [rand(4), rand(4, 5)])

    def test_dot(self):
        check_gradients(lambda t: T.dot(t[0], t[1]).tanh(), [rand(5), rand(5)])

    def test_dot_rejects_matrices(self):
        with pytest.raises(ValueError):
            T.dot(rand(2, 2), rand(2))

    def test_outer(self):
        a, b = rand(3), rand(4)
        np.testing.assert_allclose(T.outer(a, b).data, np.outer(a.data, b.data))


class TestConv:
    def test_conv2d_matches_scipy(self):
        from scipy.signal import correlate2d

        x = rand(1, 1, 6, 6)
        w = rand(1, 1, 3, 3)
        out = T.conv2d(x, w)
        expected = correlate2d(x.data[0, 0], w.data[0, 0], mode="valid")
        np.testing.assert_allclose(out.data[0, 0], expected, rtol=1e-10)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), ((1, 2), (2, 1))])
    def test_conv2d_grad(self, stride, padding):
        check_gradients(
            lambda t: T.conv2d(t[0], t[1], t[2], stride=stride, padding=padding).tanh().sum(),
            [rand(2, 3, 5, 6), rand(4, 3, 3, 3), rand(4)],
        )

    def test_conv2d_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            T.conv2d(rand(1, 2, 4, 4), rand(1, 3, 3, 3))

    def test_conv2d_output_shape(self):
        out = T.conv2d(rand(2, 3, 10, 20), rand(8, 3, 3, 3), padding=1)
        assert out.shape == (2, 8, 10, 20)

    def test_avg_pool_grad(self):
        check_gradients(lambda t: T.avg_pool2d(t[0], 2).tanh().sum(), [rand(2, 3, 4, 6)])

    def test_max_pool_grad(self):
        check_gradients(lambda t: T.max_pool2d(t[0], 2).tanh().sum(), [rand(2, 3, 4, 6)])

    def test_global_avg_pool(self):
        x = rand(2, 3, 4, 5)
        out = T.global_avg_pool2d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, x.data.mean(axis=(2, 3)))
