"""Pooled im2col scratch: bitwise conv results, zero steady-state alloc."""

import tracemalloc

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad
from repro.tensor.conv import conv2d
from repro.tensor.scratch import ScratchPool, default_pool


def reference_conv2d(x, weight, bias=None, stride=1, padding=0):
    """Freshly-allocated im2col conv with the same contraction layout.

    Builds the identical (rows, ck) x (ck, C_out) GEMM as the pooled
    implementation but with throwaway arrays, so pooling must not change
    a single bit.  (Plain ``np.tensordot`` picks a different internal
    operand order and can differ at the ULP level, so it is only an
    ``allclose`` cross-check, not the bitwise reference.)
    """
    sh, sw = (stride, stride) if isinstance(stride, int) else stride
    ph, pw = (padding, padding) if isinstance(padding, int) else padding
    from numpy.lib.stride_tricks import sliding_window_view

    n, c_in, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    x_pad = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if (ph or pw) else x
    h_out = (h + 2 * ph - kh) // sh + 1
    w_out = (w + 2 * pw - kw) // sw + 1
    windows = sliding_window_view(x_pad, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
    col = np.ascontiguousarray(windows.transpose(0, 2, 3, 1, 4, 5))
    col = col.reshape(n * h_out * w_out, c_in * kh * kw)
    w_packed = np.ascontiguousarray(weight.transpose(1, 2, 3, 0))
    w_packed = w_packed.reshape(c_in * kh * kw, c_out)
    out = (col @ w_packed).reshape(n, h_out, w_out, c_out).transpose(0, 3, 1, 2)
    if bias is not None:
        out = out + bias[None, :, None, None]
    return np.ascontiguousarray(out)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


CASES = [
    # (stride, padding, bias)
    (1, 0, False),
    (1, 1, True),
    (2, 1, False),
    ((1, 2), (2, 0), True),
]


class TestBitwiseEquality:
    @pytest.mark.parametrize("stride,padding,use_bias", CASES)
    def test_matches_tensordot_reference(self, rng, stride, padding,
                                         use_bias):
        x = rng.standard_normal((3, 4, 9, 8))
        w = rng.standard_normal((5, 4, 3, 3))
        b = rng.standard_normal(5) if use_bias else None
        with no_grad():
            got = conv2d(Tensor(x), Tensor(w),
                         None if b is None else Tensor(b),
                         stride=stride, padding=padding)
        expected = reference_conv2d(x, w, b, stride=stride, padding=padding)
        np.testing.assert_array_equal(got.data, expected)
        # Cross-check against tensordot (different operand order: ULPs).
        from numpy.lib.stride_tricks import sliding_window_view

        sh, sw = (stride, stride) if isinstance(stride, int) else stride
        ph, pw = (padding, padding) if isinstance(padding, int) else padding
        x_pad = (np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
                 if (ph or pw) else x)
        windows = sliding_window_view(x_pad, (3, 3),
                                      axis=(2, 3))[:, :, ::sh, ::sw]
        loose = np.tensordot(windows, w,
                             axes=([1, 4, 5], [1, 2, 3])).transpose(0, 3, 1, 2)
        if b is not None:
            loose = loose + b[None, :, None, None]
        np.testing.assert_allclose(got.data, loose, atol=1e-12)

    def test_explicit_pool_matches_default(self, rng):
        x = rng.standard_normal((2, 3, 7, 7))
        w = rng.standard_normal((4, 3, 3, 3))
        pool = ScratchPool()
        with no_grad():
            via_default = conv2d(Tensor(x), Tensor(w), padding=1).data
            via_explicit = conv2d(Tensor(x), Tensor(w), padding=1,
                                  scratch=pool).data
        np.testing.assert_array_equal(via_default, via_explicit)
        # The explicit pool now holds the im2col/weight/GEMM workspaces.
        assert len(pool) == 3
        assert {tag for tag, _, _ in pool._buffers} == {
            "conv2d.col", "conv2d.weight", "conv2d.gemm"}

    def test_gradients_match_with_and_without_pool(self, rng):
        x = rng.standard_normal((2, 3, 6, 6))
        w = rng.standard_normal((4, 3, 3, 3))
        b = rng.standard_normal(4)

        def run(**kwargs):
            xt = Tensor(x.copy(), requires_grad=True)
            wt = Tensor(w.copy(), requires_grad=True)
            bt = Tensor(b.copy(), requires_grad=True)
            out = conv2d(xt, wt, bt, stride=1, padding=1, **kwargs)
            (out * out).mean().backward()
            return xt.grad.copy(), wt.grad.copy(), bt.grad.copy()

        for a, c in zip(run(), run(scratch=ScratchPool())):
            np.testing.assert_array_equal(a, c)


class TestScratchReuse:
    def test_repeat_calls_reuse_pool_buffers(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        w = rng.standard_normal((4, 3, 3, 3))
        pool = ScratchPool()
        with no_grad():
            for _ in range(5):
                conv2d(Tensor(x), Tensor(w), padding=1, scratch=pool)
        # 5 calls x 3 workspaces, but only 3 allocations ever happen.
        assert len(pool) == 3
        assert pool.requested_bytes == 5 * pool.nbytes
        assert pool.reuse_pct() == pytest.approx(80.0)

    def test_distinct_shapes_get_distinct_buffers(self, rng):
        pool = ScratchPool()
        a = pool.get("conv2d.col", (2, 3, 4), np.float64)
        b = pool.get("conv2d.col", (2, 3, 5), np.float64)
        c = pool.get("conv2d.col", (2, 3, 4), np.float32)
        again = pool.get("conv2d.col", (2, 3, 4), np.float64)
        assert a is again
        assert a is not b and a is not c

    def test_steady_state_scratch_allocations_are_zero(self, rng):
        """Regression (tracemalloc): warm pooled convs stop allocating
        im2col workspaces; only the output tensor is materialised."""
        x = rng.standard_normal((4, 8, 16, 16))
        w = rng.standard_normal((16, 8, 3, 3))
        xt, wt = Tensor(x), Tensor(w)
        pool = ScratchPool()
        with no_grad():
            warm = conv2d(xt, wt, padding=1, scratch=pool)
            conv2d(xt, wt, padding=1, scratch=pool)

            workspace_bytes = pool.nbytes
            out_bytes = warm.data.nbytes
            assert workspace_bytes > 4 * out_bytes  # scratch dominates

            tracemalloc.start()
            base = tracemalloc.take_snapshot()
            for _ in range(3):
                conv2d(xt, wt, padding=1, scratch=pool)
            stats = tracemalloc.take_snapshot().compare_to(base, "filename")
            tracemalloc.stop()
        grown = sum(max(s.size_diff, 0) for s in stats)
        # 3 outputs (+ padded copies + trace noise) but no new workspaces:
        # well under a single im2col buffer.
        assert grown < workspace_bytes // 2
        assert len(pool) == 3

    def test_default_pool_is_thread_local_and_persistent(self):
        import threading

        main_pool = default_pool()
        assert default_pool() is main_pool
        seen = []
        thread = threading.Thread(target=lambda: seen.append(default_pool()))
        thread.start()
        thread.join()
        assert seen[0] is not main_pool
