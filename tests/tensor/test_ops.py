"""Gradient checks and behaviour tests for elementwise ops."""

import numpy as np
import pytest

from repro import tensor as T
from repro.tensor import Tensor, check_gradients

RNG = np.random.default_rng(42)


def rand(*shape, low=-2.0, high=2.0):
    return Tensor(RNG.uniform(low, high, size=shape))


class TestBinaryOps:
    @pytest.mark.parametrize("op", [T.add, T.sub, T.mul])
    def test_grad_same_shape(self, op):
        check_gradients(lambda t: op(t[0], t[1]).sum(), [rand(3, 4), rand(3, 4)])

    @pytest.mark.parametrize("op", [T.add, T.sub, T.mul])
    def test_grad_broadcast_row(self, op):
        check_gradients(lambda t: op(t[0], t[1]).sum(), [rand(3, 4), rand(4)])

    @pytest.mark.parametrize("op", [T.add, T.sub, T.mul])
    def test_grad_broadcast_scalar(self, op):
        check_gradients(lambda t: op(t[0], t[1]).sum(), [rand(3, 4), rand()])

    def test_div_grad(self):
        check_gradients(lambda t: T.div(t[0], t[1]).sum(), [rand(3, 4), rand(3, 4, low=0.5, high=2.0)])

    def test_div_broadcast_column(self):
        check_gradients(lambda t: T.div(t[0], t[1]).sum(), [rand(3, 4), rand(3, 1, low=0.5, high=2.0)])

    def test_python_scalar_operands(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (2 * x + 1 - x / 2).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [1.5, 1.5])

    def test_reverse_operators(self):
        x = Tensor([2.0])
        np.testing.assert_allclose((3 - x).data, [1.0])
        np.testing.assert_allclose((8 / x).data, [4.0])
        np.testing.assert_allclose((3 + x).data, [5.0])
        np.testing.assert_allclose((3 * x).data, [6.0])

    def test_maximum_grad_goes_to_larger(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([2.0, 3.0], requires_grad=True)
        T.maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])

    def test_minimum_grad_goes_to_smaller(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([2.0, 3.0], requires_grad=True)
        T.minimum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])

    def test_where(self):
        cond = np.array([True, False, True])
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([10.0, 20.0, 30.0], requires_grad=True)
        out = T.where(cond, a, b)
        np.testing.assert_allclose(out.data, [1.0, 20.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


class TestUnaryOps:
    @pytest.mark.parametrize(
        "op",
        [T.neg, T.exp, T.tanh, T.sigmoid, T.softplus, T.abs_],
    )
    def test_grad(self, op):
        check_gradients(lambda t: op(t[0]).sum(), [rand(3, 4)])

    def test_log_grad(self):
        check_gradients(lambda t: T.log(t[0]).sum(), [rand(3, 4, low=0.5, high=3.0)])

    def test_sqrt_grad(self):
        check_gradients(lambda t: T.sqrt(t[0]).sum(), [rand(3, 4, low=0.5, high=3.0)])

    def test_pow_grad(self):
        check_gradients(lambda t: T.pow_(t[0], 3).sum(), [rand(3, 4)])

    def test_pow_tensor_exponent_raises(self):
        with pytest.raises(TypeError):
            T.pow_(rand(2), rand(2))

    def test_relu_grad_masks_negative(self):
        x = Tensor([-1.0, 2.0], requires_grad=True)
        T.relu(x).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_leaky_relu(self):
        x = Tensor([-2.0, 2.0], requires_grad=True)
        out = T.leaky_relu(x, negative_slope=0.1)
        np.testing.assert_allclose(out.data, [-0.2, 2.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.1, 1.0])

    def test_sigmoid_extreme_values_stable(self):
        x = Tensor([-500.0, 500.0])
        out = T.sigmoid(x)
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)

    def test_softplus_extreme_values_stable(self):
        x = Tensor([-500.0, 500.0])
        out = T.softplus(x)
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data, [0.0, 500.0], atol=1e-12)

    def test_clip_grad_zero_outside(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        T.clip(x, -1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestUnbroadcast:
    def test_prepended_axes(self):
        grad = np.ones((2, 3, 4))
        out = T.unbroadcast(grad, (3, 4))
        np.testing.assert_allclose(out, np.full((3, 4), 2.0))

    def test_stretched_axes(self):
        grad = np.ones((3, 4))
        out = T.unbroadcast(grad, (3, 1))
        np.testing.assert_allclose(out, np.full((3, 1), 4.0))

    def test_identity(self):
        grad = np.ones((3, 4))
        assert T.unbroadcast(grad, (3, 4)) is grad

    def test_scalar_target(self):
        grad = np.ones((2, 2))
        out = T.unbroadcast(grad, ())
        assert out == 4.0
