"""Smoke tests for the example scripts.

Every example must at least compile; the fastest one runs end to end.
(The training examples run in minutes and are exercised manually /
by the benchmark suite's equivalent paths.)
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_custom_city_simulation_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "custom_city_simulation.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "point shift" in result.stdout
    assert "pipeline" in result.stdout
