"""Tests for scaling, sample batching, splits, and masks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data import (
    GridSpec,
    MinMaxScaler,
    MultiPeriodicity,
    build_samples,
    chronological_split,
    iterate_batches,
    non_peak_mask,
    peak_mask,
    weekday_mask,
    weekend_mask,
)


class TestScaler:
    def test_range_after_transform(self):
        scaler = MinMaxScaler((-1, 1))
        data = np.random.default_rng(0).uniform(5, 50, size=(10, 4))
        out = scaler.fit_transform(data)
        assert out.min() == pytest.approx(-1.0)
        assert out.max() == pytest.approx(1.0)

    def test_inverse_round_trip(self):
        scaler = MinMaxScaler()
        data = np.random.default_rng(0).uniform(-3, 9, size=(20,))
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.fit_transform(data)), data, rtol=1e-12
        )

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.ones(3))

    def test_constant_data_does_not_divide_by_zero(self):
        out = MinMaxScaler().fit_transform(np.full(5, 3.0))
        assert np.all(np.isfinite(out))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler((1, 1))

    def test_test_values_can_exceed_range(self):
        # Values outside the fitted range map outside [-1, 1] (expected).
        scaler = MinMaxScaler().fit(np.array([0.0, 10.0]))
        assert scaler.transform(np.array([20.0]))[0] > 1.0

    def test_fit_rejects_nan_with_census(self):
        data = np.array([1.0, float("nan"), 3.0, float("nan")])
        with pytest.raises(ValueError, match=r"2 NaN, 0 Inf of 4"):
            MinMaxScaler().fit(data)

    def test_fit_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            MinMaxScaler().fit(np.array([1.0, float("inf")]))

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            MinMaxScaler().fit(np.array([]))

    def test_failed_fit_leaves_scaler_unfitted(self):
        scaler = MinMaxScaler()
        with pytest.raises(ValueError):
            scaler.fit(np.array([float("nan")]))
        assert not scaler.fitted

    @given(
        hnp.arrays(np.float64, st.integers(2, 50),
                   elements=st.floats(-100, 100, allow_nan=False))
    )
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, data):
        scaler = MinMaxScaler()
        recovered = scaler.inverse_transform(scaler.fit_transform(data))
        np.testing.assert_allclose(recovered, data, atol=1e-9)


class TestScalerUpdate:
    """update(): rolling re-fit must equal a full refit bit-for-bit."""

    def test_update_is_bit_identical_to_refit_on_concatenation(self):
        rng = np.random.default_rng(11)
        chunks = [rng.uniform(-3 * k - 1, 4 * k + 2, size=(20, 2, 3))
                  for k in range(4)]
        rolling = MinMaxScaler((-0.9, 0.9)).fit(chunks[0])
        for chunk in chunks[1:]:
            rolling.update(chunk)
        refit = MinMaxScaler((-0.9, 0.9)).fit(np.concatenate(chunks))
        assert rolling.data_min == refit.data_min
        assert rolling.data_max == refit.data_max
        probe = rng.uniform(-20, 20, size=(7, 2, 3))
        assert np.array_equal(rolling.transform(probe),
                              refit.transform(probe))
        assert np.array_equal(rolling.inverse_transform(probe),
                              refit.inverse_transform(probe))

    def test_bounds_only_widen(self):
        scaler = MinMaxScaler().fit(np.array([0.0, 10.0]))
        scaler.update(np.array([3.0, 7.0]))  # inside: no-op
        assert (scaler.data_min, scaler.data_max) == (0.0, 10.0)
        scaler.update(np.array([-5.0, 12.0]))
        assert (scaler.data_min, scaler.data_max) == (-5.0, 12.0)

    def test_update_through_degenerate_bounds_matches_refit(self):
        # fit() on constant data rewrites data_max (divide-by-zero
        # guard); update() must fold into the *raw* bounds so the
        # result still matches a refit on the concatenation.
        rolling = MinMaxScaler().fit(np.full(5, 2.0))
        assert rolling.data_max == 3.0  # degeneracy adjustment
        rolling.update(np.array([2.5]))
        refit = MinMaxScaler().fit(np.array([2.0] * 5 + [2.5]))
        assert rolling.data_min == refit.data_min
        assert rolling.data_max == refit.data_max

    def test_update_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="before fit"):
            MinMaxScaler().update(np.array([1.0]))

    def test_update_rejects_non_finite(self):
        scaler = MinMaxScaler().fit(np.array([0.0, 1.0]))
        with pytest.raises(ValueError, match="non-finite"):
            scaler.update(np.array([np.nan]))
        # A failed update leaves the bounds untouched.
        assert (scaler.data_min, scaler.data_max) == (0.0, 1.0)


def make_setup(num_intervals=800, f=48):
    mp = MultiPeriodicity(2, 1, 1, samples_per_day=f)
    flows = np.random.default_rng(0).uniform(0, 5, size=(num_intervals, 2, 3, 4))
    return mp, flows


class TestBuildSamples:
    def test_shapes(self):
        mp, flows = make_setup()
        indices = np.arange(mp.min_index, mp.min_index + 10)
        batch = build_samples(flows, mp, indices)
        assert batch.closeness.shape == (10, 2, 2, 3, 4)
        assert batch.period.shape == (10, 1, 2, 3, 4)
        assert batch.target.shape == (10, 2, 3, 4)
        assert len(batch) == 10

    def test_targets_match_flows(self):
        mp, flows = make_setup()
        indices = [mp.min_index, mp.min_index + 5]
        batch = build_samples(flows, mp, indices)
        np.testing.assert_allclose(batch.target[1], flows[mp.min_index + 5])

    def test_take_subsets(self):
        mp, flows = make_setup()
        batch = build_samples(flows, mp, np.arange(mp.min_index, mp.min_index + 6))
        sub = batch.take([0, 3])
        assert len(sub) == 2
        np.testing.assert_allclose(sub.target[1], batch.target[3])

    def test_slice_matches_take_with_range(self):
        mp, flows = make_setup()
        batch = build_samples(flows, mp, np.arange(mp.min_index, mp.min_index + 6))
        sliced = batch.slice(1, 4)
        taken = batch.take(range(1, 4))
        assert len(sliced) == 3
        for field in ("closeness", "period", "trend", "target", "indices"):
            np.testing.assert_array_equal(getattr(sliced, field),
                                          getattr(taken, field))

    def test_slice_is_a_view_take_is_a_copy(self):
        # The eval chunk loop relies on slice being zero-copy; take's
        # fancy indexing must keep copying (its callers mutate).
        mp, flows = make_setup()
        batch = build_samples(flows, mp, np.arange(mp.min_index, mp.min_index + 6))
        assert np.shares_memory(batch.slice(0, 3).closeness, batch.closeness)
        assert not np.shares_memory(batch.take([0, 1, 2]).closeness,
                                    batch.closeness)

    def test_slice_past_the_end_clamps(self):
        mp, flows = make_setup()
        batch = build_samples(flows, mp, np.arange(mp.min_index, mp.min_index + 6))
        assert len(batch.slice(4, 100)) == 2  # like ndarray slicing


class TestSplit:
    def test_partition_is_disjoint_and_ordered(self):
        mp, _flows = make_setup()
        train, val, test = chronological_split(800, mp, test_intervals=100)
        assert set(train) & set(val) == set()
        assert set(val) & set(test) == set()
        assert train.max() < val.min() < test.min()

    def test_test_size(self):
        mp, _ = make_setup()
        _train, _val, test = chronological_split(800, mp, test_intervals=100)
        assert len(test) == 100

    def test_val_fraction(self):
        mp, _ = make_setup()
        train, val, _test = chronological_split(800, mp, test_intervals=100,
                                                val_fraction=0.2)
        assert len(val) == pytest.approx(0.2 * (len(train) + len(val)), abs=1)

    def test_horizon_margin_trims_tail(self):
        mp, _ = make_setup()
        _tr, _v, test_plain = chronological_split(800, mp, test_intervals=50)
        _tr2, _v2, test_margin = chronological_split(800, mp, test_intervals=50,
                                                     horizon_margin=3)
        assert test_margin.max() == test_plain.max() - 3

    def test_too_small_raises(self):
        mp, _ = make_setup()
        with pytest.raises(ValueError):
            chronological_split(mp.min_index + 2, mp, test_intervals=1)

    def test_oversized_test_raises(self):
        mp, _ = make_setup()
        with pytest.raises(ValueError):
            chronological_split(800, mp, test_intervals=10_000)

    def test_zero_test_intervals_gives_empty_test(self):
        # Regression: `all_indices[-0:]` used to hand the *entire*
        # usable range to the test split and empty the train split.
        mp, _ = make_setup()
        train, val, test = chronological_split(800, mp, test_intervals=0)
        assert len(test) == 0
        assert len(train) > 0
        assert len(val) > 0
        assert len(train) + len(val) == 800 - mp.min_index

    def test_negative_test_intervals_raises(self):
        mp, _ = make_setup()
        with pytest.raises(ValueError):
            chronological_split(800, mp, test_intervals=-1)


class TestBatching:
    def test_batches_cover_everything_once(self):
        mp, flows = make_setup()
        batch = build_samples(flows, mp, np.arange(mp.min_index, mp.min_index + 23))
        seen = []
        for piece in iterate_batches(batch, 5, rng=np.random.default_rng(0)):
            seen.extend(piece.indices.tolist())
        assert sorted(seen) == sorted(batch.indices.tolist())

    def test_batch_sizes(self):
        mp, flows = make_setup()
        batch = build_samples(flows, mp, np.arange(mp.min_index, mp.min_index + 23))
        sizes = [len(p) for p in iterate_batches(batch, 5, shuffle=False)]
        assert sizes == [5, 5, 5, 5, 3]

    def test_no_shuffle_preserves_order(self):
        mp, flows = make_setup()
        batch = build_samples(flows, mp, np.arange(mp.min_index, mp.min_index + 10))
        first = next(iter(iterate_batches(batch, 4, shuffle=False)))
        np.testing.assert_array_equal(first.indices, batch.indices[:4])

    def test_shuffle_deterministic_per_seed(self):
        mp, flows = make_setup()
        batch = build_samples(flows, mp, np.arange(mp.min_index, mp.min_index + 20))
        a = [p.indices.tolist() for p in iterate_batches(batch, 6, rng=np.random.default_rng(3))]
        b = [p.indices.tolist() for p in iterate_batches(batch, 6, rng=np.random.default_rng(3))]
        assert a == b

    def test_default_rng_shuffles_differently_each_epoch(self):
        # Regression: seeding a fresh rng inside every call gave each
        # epoch the identical shuffle order for rng-less callers.
        mp, flows = make_setup()
        batch = build_samples(flows, mp, np.arange(mp.min_index, mp.min_index + 40))
        epoch1 = [p.indices.tolist() for p in iterate_batches(batch, 8)]
        epoch2 = [p.indices.tolist() for p in iterate_batches(batch, 8)]
        assert epoch1 != epoch2
        # Both epochs still cover every sample exactly once.
        flat1 = sorted(i for piece in epoch1 for i in piece)
        flat2 = sorted(i for piece in epoch2 for i in piece)
        assert flat1 == flat2 == sorted(batch.indices.tolist())


class TestMasks:
    GRID = GridSpec(2, 2, interval_minutes=60, start_weekday=0)

    def test_peak_hours(self):
        # Monday 07:00 and 17:00 are peak; 12:00 is not.
        assert peak_mask(self.GRID, [7])[0]
        assert peak_mask(self.GRID, [17])[0]
        assert not peak_mask(self.GRID, [12])[0]

    def test_peak_boundaries_half_open(self):
        assert not peak_mask(self.GRID, [9])[0]   # 9:00 excluded
        assert peak_mask(self.GRID, [8])[0]

    def test_non_peak_complement(self):
        idx = np.arange(48)
        np.testing.assert_array_equal(peak_mask(self.GRID, idx), ~non_peak_mask(self.GRID, idx))

    def test_weekday_weekend_partition(self):
        idx = np.arange(24 * 14)
        np.testing.assert_array_equal(
            weekday_mask(self.GRID, idx), ~weekend_mask(self.GRID, idx)
        )

    def test_weekend_respects_start_weekday(self):
        saturday_start = GridSpec(2, 2, interval_minutes=60, start_weekday=5)
        assert weekend_mask(saturday_start, [0])[0]
        assert not weekend_mask(saturday_start, [2 * 24])[0]


class TestDtypePolicy:
    def test_transform_follows_policy(self):
        from repro.tensor import default_dtype

        data = np.random.default_rng(0).uniform(0, 5, size=(10, 4))
        scaler = MinMaxScaler().fit(data)
        assert scaler.transform(data).dtype == np.float64
        with default_dtype(np.float32):
            assert scaler.transform(data).dtype == np.float32

    def test_inverse_transform_keeps_float_dtype(self):
        data = np.random.default_rng(0).uniform(0, 5, size=(10, 4))
        scaler = MinMaxScaler().fit(data)
        scaled32 = scaler.transform(data).astype(np.float32)
        assert scaler.inverse_transform(scaled32).dtype == np.float32
        assert scaler.inverse_transform(scaled32.astype(np.float64)).dtype == np.float64

    def test_sample_batch_astype(self):
        mp, flows = make_setup()
        batch = build_samples(flows, mp, np.arange(mp.min_index, mp.min_index + 12))
        cast = batch.astype(np.float32)
        for field in ("closeness", "period", "trend", "target"):
            assert getattr(cast, field).dtype == np.float32
            np.testing.assert_allclose(getattr(cast, field),
                                       getattr(batch, field), rtol=1e-6)
        # Indices stay integer, and a no-op cast shares memory.
        assert cast.indices.dtype == batch.indices.dtype
        assert cast.astype(np.float32).closeness is cast.closeness
