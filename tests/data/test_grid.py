"""Tests for GridSpec geometry and calendar arithmetic."""

import numpy as np
import pytest

from repro.data import GridSpec


class TestConstruction:
    def test_basic_properties(self):
        grid = GridSpec(10, 20, interval_minutes=30)
        assert grid.num_regions == 200
        assert grid.samples_per_day == 48
        assert grid.samples_per_week == 336

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            GridSpec(0, 5)

    def test_interval_must_divide_day(self):
        with pytest.raises(ValueError):
            GridSpec(2, 2, interval_minutes=7)

    def test_invalid_weekday(self):
        with pytest.raises(ValueError):
            GridSpec(2, 2, start_weekday=7)


class TestRegionIndexing:
    def test_round_trip(self):
        grid = GridSpec(4, 6)
        for row in range(4):
            for col in range(6):
                index = grid.region_index(row, col)
                assert grid.region_coords(index) == (row, col)

    def test_row_major_order(self):
        grid = GridSpec(3, 5)
        assert grid.region_index(0, 0) == 0
        assert grid.region_index(0, 4) == 4
        assert grid.region_index(1, 0) == 5

    def test_vectorized(self):
        grid = GridSpec(3, 5)
        rows = np.array([0, 1, 2])
        cols = np.array([4, 0, 3])
        np.testing.assert_array_equal(grid.region_index(rows, cols), [4, 5, 13])

    def test_out_of_bounds(self):
        grid = GridSpec(3, 5)
        with pytest.raises(ValueError):
            grid.region_index(3, 0)
        with pytest.raises(ValueError):
            grid.region_coords(15)


class TestCalendar:
    def test_hour_of_day_cycle(self):
        grid = GridSpec(2, 2, interval_minutes=30)
        assert grid.hour_of_day(0) == 0.0
        assert grid.hour_of_day(16) == 8.0
        assert grid.hour_of_day(48) == 0.0

    def test_day_of_week_respects_start(self):
        grid = GridSpec(2, 2, interval_minutes=30, start_weekday=4)  # Friday
        assert grid.day_of_week(0) == 4
        assert grid.day_of_week(48) == 5  # Saturday
        assert grid.day_of_week(3 * 48) == 0  # wraps to Monday

    def test_is_weekend(self):
        grid = GridSpec(2, 2, interval_minutes=60, start_weekday=5)  # Saturday
        assert grid.is_weekend(0)
        assert grid.is_weekend(24 + 1)  # Sunday
        assert not grid.is_weekend(2 * 24)  # Monday

    def test_intervals_for_days(self):
        grid = GridSpec(2, 2, interval_minutes=30)
        assert grid.intervals_for_days(3) == 144

    def test_vectorized_calendar(self):
        grid = GridSpec(2, 2, interval_minutes=60)
        hours = grid.hour_of_day(np.arange(25))
        assert hours[24] == 0.0
        assert hours[12] == 12.0
