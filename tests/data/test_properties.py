"""Hypothesis property tests for data-substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    CityConfig,
    GridSpec,
    MultiPeriodicity,
    TrajectorySimulator,
    flows_from_positions,
)


@given(
    st.integers(2, 5),  # height
    st.integers(2, 5),  # width
    st.integers(2, 12),  # steps
    st.integers(1, 20),  # agents
    st.integers(0, 1000),  # seed
)
@settings(max_examples=40, deadline=None)
def test_flow_conservation(height, width, steps, agents, seed):
    """Every region exit is somewhere else's entry: totals balance."""
    grid = GridSpec(height, width, interval_minutes=60)
    rng = np.random.default_rng(seed)
    positions = rng.integers(0, grid.num_regions, size=(steps, agents))
    flows = flows_from_positions(positions, grid)
    np.testing.assert_allclose(
        flows[:, 0].sum(axis=(1, 2)), flows[:, 1].sum(axis=(1, 2))
    )


@given(
    st.integers(2, 4),
    st.integers(2, 4),
    st.integers(2, 8),
    st.integers(1, 15),
    st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_flows_bounded_by_population(height, width, steps, agents, seed):
    """No interval can move more agents than exist."""
    grid = GridSpec(height, width, interval_minutes=60)
    rng = np.random.default_rng(seed)
    positions = rng.integers(0, grid.num_regions, size=(steps, agents))
    flows = flows_from_positions(positions, grid)
    assert flows[:, 0].sum(axis=(1, 2)).max() <= agents
    assert flows.min() >= 0


@given(st.integers(0, 2**31 - 1), st.integers(20, 80))
@settings(max_examples=15, deadline=None)
def test_simulator_flows_always_valid(seed, agents):
    """Simulator output is finite, non-negative, and conserved."""
    grid = GridSpec(3, 4, interval_minutes=120)
    simulator = TrajectorySimulator(grid, CityConfig(num_agents=agents), seed=seed)
    flows = simulator.simulate(grid.intervals_for_days(2))
    assert np.all(np.isfinite(flows))
    assert flows.min() >= 0
    # Conservation holds for every interval after the first.
    np.testing.assert_allclose(
        flows[1:, 0].sum(axis=(1, 2)), flows[1:, 1].sum(axis=(1, 2))
    )


@given(
    st.integers(1, 4),  # L_c
    st.integers(1, 3),  # L_p
    st.integers(1, 2),  # L_t
    st.integers(2, 24),  # samples per day
    st.integers(0, 50),  # offset past min_index
)
@settings(max_examples=60, deadline=None)
def test_periodicity_indices_strictly_past(lc, lp, lt, f, offset):
    """Every referenced interval lies strictly before the target."""
    mp = MultiPeriodicity(lc, lp, lt, samples_per_day=f)
    i = mp.min_index + offset
    for idx in (mp.closeness_indices(i), mp.period_indices(i), mp.trend_indices(i)):
        assert np.all(idx >= 0)
        assert np.all(idx < i)


@given(
    st.integers(1, 4),
    st.integers(1, 3),
    st.integers(1, 2),
    st.integers(2, 24),
)
@settings(max_examples=60, deadline=None)
def test_periodicity_min_index_is_tight(lc, lp, lt, f):
    """min_index is the smallest index whose windows stay in bounds."""
    mp = MultiPeriodicity(lc, lp, lt, samples_per_day=f)
    i = mp.min_index
    oldest = min(
        mp.closeness_indices(i).min(),
        mp.period_indices(i).min(),
        mp.trend_indices(i).min(),
    )
    assert oldest == 0 or oldest > 0
    # One step earlier, some window would go negative.
    j = i - 1
    oldest_early = min(
        mp.closeness_indices(j).min(),
        mp.period_indices(j).min(),
        mp.trend_indices(j).min(),
    )
    assert oldest_early < 0


@given(
    st.integers(2, 24),  # samples per day
    st.integers(0, 6),  # start weekday
    st.integers(0, 500),  # interval
)
@settings(max_examples=80, deadline=None)
def test_calendar_consistency(f, start_weekday, interval):
    """Hour/day-of-week arithmetic is consistent and cyclic."""
    interval_minutes = 24 * 60 // f
    if 24 * 60 % f != 0:
        return  # GridSpec requires the interval to divide a day
    grid = GridSpec(2, 2, interval_minutes=interval_minutes,
                    start_weekday=start_weekday)
    hour = float(grid.hour_of_day(interval))
    assert 0.0 <= hour < 24.0
    dow = int(grid.day_of_week(interval))
    assert 0 <= dow < 7
    # A week later, same hour and weekday.
    later = interval + grid.samples_per_week
    assert float(grid.hour_of_day(later)) == hour
    assert int(grid.day_of_week(later)) == dow
