"""Tests for the trajectory simulator and Definition-2 aggregation."""

import numpy as np
import pytest

from repro.data import (
    CityConfig,
    GridSpec,
    LevelShift,
    TrafficEvent,
    TrajectorySimulator,
    flows_from_positions,
)

GRID = GridSpec(4, 5, interval_minutes=60, start_weekday=0)


def small_sim(**config_kwargs):
    config = CityConfig(num_agents=200, **config_kwargs)
    return TrajectorySimulator(GRID, config, seed=1)


class TestFlowsFromPositions:
    def test_manual_transitions(self):
        # Two agents: one moves 0 -> 1 at t=1, the other stays put.
        positions = np.array([[0, 7], [1, 7], [1, 7]])
        flows = flows_from_positions(positions, GRID)
        assert flows[1, 0, 0, 0] == 1.0  # outflow from region 0
        assert flows[1, 1, 0, 1] == 1.0  # inflow into region 1
        assert flows[2].sum() == 0.0

    def test_first_interval_zero(self):
        positions = np.array([[0], [5]])
        flows = flows_from_positions(positions, GRID)
        assert flows[0].sum() == 0.0

    def test_inflow_equals_outflow_globally(self):
        # Every move leaves one region and enters another.
        rng = np.random.default_rng(0)
        positions = rng.integers(0, GRID.num_regions, size=(10, 30))
        flows = flows_from_positions(positions, GRID)
        np.testing.assert_allclose(
            flows[:, 0].sum(axis=(1, 2)), flows[:, 1].sum(axis=(1, 2))
        )


class TestSimulator:
    def test_flow_shape(self):
        flows = small_sim().simulate(GRID.intervals_for_days(2))
        assert flows.shape == (48, 2, 4, 5)

    def test_flows_nonnegative(self):
        flows = small_sim().simulate(GRID.intervals_for_days(2))
        assert np.all(flows >= 0)

    def test_online_aggregation_matches_definition2(self):
        # The flows accumulated during simulation must equal the flows
        # recomputed from the recorded trajectory log via Eqs. (1)-(2).
        sim = small_sim()
        flows, log = sim.simulate(GRID.intervals_for_days(3), record_positions=True)
        recomputed = flows_from_positions(log, GRID)
        # The online version counts transitions from the pre-first-step
        # state as well; align by zeroing t=0 on both.
        flows = flows.copy()
        flows[0] = 0
        np.testing.assert_allclose(flows, recomputed)

    def test_reproducible_with_seed(self):
        a = TrajectorySimulator(GRID, CityConfig(num_agents=100), seed=7).simulate(24)
        b = TrajectorySimulator(GRID, CityConfig(num_agents=100), seed=7).simulate(24)
        np.testing.assert_allclose(a, b)

    def test_different_seeds_differ(self):
        a = TrajectorySimulator(GRID, CityConfig(num_agents=100), seed=1).simulate(48)
        b = TrajectorySimulator(GRID, CityConfig(num_agents=100), seed=2).simulate(48)
        assert not np.allclose(a, b)

    def test_daily_periodicity_emerges(self):
        flows = small_sim().simulate(GRID.intervals_for_days(10))
        series = flows[:, 1].sum(axis=(1, 2))
        series = (series - series.mean()) / (series.std() + 1e-9)
        f = GRID.samples_per_day
        daily = float(np.mean(series[:-f] * series[f:]))
        off = float(np.mean(series[:-f // 3] * series[f // 3:]))
        assert daily > off + 0.2

    def test_morning_commute_peak(self):
        flows = small_sim().simulate(GRID.intervals_for_days(5))
        hours = GRID.hour_of_day(np.arange(len(flows)))
        weekday = ~GRID.is_weekend(np.arange(len(flows)))
        totals = flows.sum(axis=(1, 2, 3))
        peak = totals[weekday & (hours >= 7) & (hours < 10)].mean()
        night = totals[weekday & (hours >= 1) & (hours < 5)].mean()
        assert peak > 2 * night

    def test_weekend_differs_from_weekday(self):
        flows = small_sim().simulate(GRID.intervals_for_days(14))
        weekend = GRID.is_weekend(np.arange(len(flows)))
        wk = flows[~weekend].sum(axis=(1, 2, 3)).mean()
        we = flows[weekend].sum(axis=(1, 2, 3)).mean()
        assert abs(wk - we) / max(wk, we) > 0.1


class TestShifts:
    def test_event_creates_point_shift(self):
        region = GRID.region_index(2, 2)
        event = TrafficEvent(region=region, start_interval=30, duration=3, attendance=150)
        flows = small_sim(events=[event]).simulate(48)
        baseline = small_sim().simulate(48)
        # Inflow into the event cell spikes at the event interval.
        assert flows[30, 1, 2, 2] > baseline[30, 1, 2, 2] + 50

    def test_level_shift_reduces_volume(self):
        days = 12
        shift = LevelShift(start_interval=GRID.intervals_for_days(6), factor=0.3)
        flows = small_sim(level_shift=shift, weekend_leisure_rate=0.2,
                          noise_trip_rate=0.05).simulate(GRID.intervals_for_days(days))
        first = flows[: GRID.intervals_for_days(6)].sum()
        second = flows[GRID.intervals_for_days(6):].sum()
        assert second < first

    def test_event_attendance_caps_at_population(self):
        event = TrafficEvent(region=0, start_interval=2, duration=2, attendance=10_000)
        flows = small_sim(events=[event]).simulate(6)  # must not raise
        assert flows[2, 1].sum() <= 200
