"""Tests for Definition-3 windowing (closeness/period/trend)."""

import numpy as np
import pytest

from repro.data import MultiPeriodicity

F = 48  # samples per day


def indexed_flows(num_intervals):
    """Flows whose value encodes the interval index, for easy checking."""
    flows = np.zeros((num_intervals, 2, 2, 2))
    flows += np.arange(num_intervals)[:, None, None, None]
    return flows


class TestIndices:
    def setup_method(self):
        self.mp = MultiPeriodicity(3, 4, 4, samples_per_day=F)

    def test_min_index_is_trend_bound(self):
        assert self.mp.min_index == 4 * F * 7

    def test_closeness_eq3(self):
        i = 2000
        np.testing.assert_array_equal(self.mp.closeness_indices(i), [1997, 1998, 1999])

    def test_period_eq4(self):
        i = 2000
        np.testing.assert_array_equal(
            self.mp.period_indices(i), [i - 4 * F, i - 3 * F, i - 2 * F, i - F]
        )

    def test_trend_eq5(self):
        i = 2000
        expected = [i - k * F * 7 for k in (4, 3, 2, 1)]
        np.testing.assert_array_equal(self.mp.trend_indices(i), expected)

    def test_invalid_lengths(self):
        with pytest.raises(ValueError):
            MultiPeriodicity(0, 1, 1)


class TestSliceAt:
    def setup_method(self):
        self.mp = MultiPeriodicity(2, 2, 1, samples_per_day=F)
        self.flows = indexed_flows(self.mp.min_index + 10)

    def test_sample_contents(self):
        i = self.mp.min_index + 3
        sample = self.mp.slice_at(self.flows, i)
        np.testing.assert_allclose(sample.closeness[:, 0, 0, 0], [i - 2, i - 1])
        np.testing.assert_allclose(sample.period[:, 0, 0, 0], [i - 2 * F, i - F])
        np.testing.assert_allclose(sample.trend[:, 0, 0, 0], [i - 7 * F])
        np.testing.assert_allclose(sample.target[0, 0, 0], i)

    def test_below_min_index_raises(self):
        with pytest.raises(IndexError):
            self.mp.slice_at(self.flows, self.mp.min_index - 1)

    def test_beyond_end_raises(self):
        with pytest.raises(IndexError):
            self.mp.slice_at(self.flows, len(self.flows))

    def test_shapes(self):
        sample = self.mp.slice_at(self.flows, self.mp.min_index)
        assert sample.closeness.shape == (2, 2, 2, 2)
        assert sample.period.shape == (2, 2, 2, 2)
        assert sample.trend.shape == (1, 2, 2, 2)
        assert sample.target.shape == (2, 2, 2)


class TestMultiStep:
    def setup_method(self):
        self.mp = MultiPeriodicity(2, 2, 1, samples_per_day=F)
        self.flows = indexed_flows(self.mp.min_index + 20)

    def test_horizon_one_matches_one_step(self):
        anchor = self.mp.min_index + 5
        single = self.mp.slice_at(self.flows, anchor)
        multi = self.mp.slice_multistep(self.flows, anchor, horizon=1)
        np.testing.assert_allclose(single.target, multi.target)
        np.testing.assert_allclose(single.closeness, multi.closeness)

    def test_horizon_moves_target_not_closeness(self):
        anchor = self.mp.min_index + 5
        h1 = self.mp.slice_multistep(self.flows, anchor, horizon=1)
        h3 = self.mp.slice_multistep(self.flows, anchor, horizon=3)
        np.testing.assert_allclose(h1.closeness, h3.closeness)
        assert h3.target[0, 0, 0] == h1.target[0, 0, 0] + 2

    def test_period_lags_follow_target(self):
        anchor = self.mp.min_index + 5
        h2 = self.mp.slice_multistep(self.flows, anchor, horizon=2)
        target = anchor + 1
        np.testing.assert_allclose(h2.period[:, 0, 0, 0], [target - 2 * F, target - F])

    def test_all_inputs_strictly_before_anchor(self):
        # No lookahead: every referenced interval must be < anchor.
        anchor = self.mp.min_index + 5
        for horizon in (1, 2, 3):
            target = anchor + horizon - 1
            assert np.all(self.mp.closeness_indices(anchor) < anchor)
            assert np.all(self.mp.period_indices(target) < anchor)
            assert np.all(self.mp.trend_indices(target) < anchor)

    def test_invalid_horizon(self):
        anchor = self.mp.min_index + 5
        with pytest.raises(ValueError):
            self.mp.slice_multistep(self.flows, anchor, horizon=0)
        with pytest.raises(ValueError):
            self.mp.slice_multistep(self.flows, anchor, horizon=F + 1)

    def test_out_of_range_anchor(self):
        with pytest.raises(IndexError):
            self.mp.slice_multistep(self.flows, len(self.flows) - 1, horizon=5)
