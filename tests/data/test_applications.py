"""Tests for the application-domain generators and custom lags."""

import numpy as np
import pytest

from repro.data import (
    MultiPeriodicity,
    air_quality_dataset,
    energy_dataset,
    epidemic_dataset,
    prepare_forecast_data,
)


class TestCustomLags:
    def test_defaults_match_paper(self):
        mp = MultiPeriodicity(3, 4, 4, samples_per_day=48)
        assert mp.period_lag == 48
        assert mp.trend_lag == 48 * 7

    def test_custom_lags_in_indices(self):
        mp = MultiPeriodicity(2, 2, 1, samples_per_day=1,
                              period_lag=7, trend_lag=28)
        np.testing.assert_array_equal(mp.period_indices(100), [86, 93])
        np.testing.assert_array_equal(mp.trend_indices(100), [72])

    def test_min_index_uses_custom_lags(self):
        mp = MultiPeriodicity(2, 2, 2, samples_per_day=1,
                              period_lag=7, trend_lag=28)
        assert mp.min_index == 56

    def test_invalid_lag(self):
        with pytest.raises(ValueError):
            MultiPeriodicity(1, 1, 1, samples_per_day=1, period_lag=0)


class TestEpidemic:
    def setup_method(self):
        self.ds = epidemic_dataset(days=120, seed=3)

    def test_shape_and_nonnegative(self):
        assert self.ds.flows.shape == (120, 2, 6, 6)
        assert np.all(self.ds.flows >= 0)

    def test_daily_sampling_with_weekly_period(self):
        assert self.ds.grid.samples_per_day == 1
        assert self.ds.periodicity.period_lag == 7
        assert self.ds.periodicity.trend_lag == 28

    def test_outbreak_grows_then_declines(self):
        active = self.ds.flows[:, 1].sum(axis=(1, 2))
        peak = int(active.argmax())
        assert 0 < peak < 119
        assert active[peak] > active[0]
        assert active[peak] > active[-1]

    def test_intervention_reduces_transmission(self):
        cases = self.ds.flows[:, 0].sum(axis=(1, 2))
        # Growth rate after the day-60 intervention is lower than the
        # pre-intervention exponential phase.
        early = cases[20:40].mean()
        late_growth = cases[70:90].mean() / max(cases[60:70].mean(), 1e-9)
        assert late_growth < 2.0
        assert early > 0

    def test_weekend_underreporting(self):
        days = np.arange(120)
        weekday = (days % 7) < 5
        cases = self.ds.flows[:, 0].sum(axis=(1, 2))
        # Normalize out the epidemic curve with a 7-day rolling mean.
        kernel = np.ones(7) / 7
        smooth = np.convolve(cases, kernel, mode="same")
        ratio = cases / np.maximum(smooth, 1e-9)
        assert ratio[weekday].mean() > ratio[~weekday].mean()

    def test_pipeline_integration(self):
        data = prepare_forecast_data(self.ds, test_intervals=20)
        assert len(data.train) > 0
        assert data.train.period.shape[1] == 2  # L_p frames


class TestAirQuality:
    def setup_method(self):
        self.ds = air_quality_dataset(days=21, seed=1)

    def test_shapes(self):
        assert self.ds.flows.shape == (21 * 24, 2, 6, 8)
        assert np.all(self.ds.flows >= 0)

    def test_no2_follows_rush_hour(self):
        hours = self.ds.grid.hour_of_day(np.arange(self.ds.num_intervals))
        weekday = ~self.ds.grid.is_weekend(np.arange(self.ds.num_intervals))
        no2 = self.ds.flows[:, 1].sum(axis=(1, 2))
        rush = no2[weekday & (hours == 8)].mean()
        night = no2[weekday & (hours == 3)].mean()
        assert rush > 1.5 * night

    def test_inversion_raises_pm(self):
        ds = air_quality_dataset(days=35, seed=1)
        pm = ds.flows[:, 0].mean(axis=(1, 2))
        start = ds.grid.intervals_for_days(21)
        during = pm[start + 24:start + 4 * 24].mean()
        before = pm[start - 5 * 24:start - 24].mean()
        assert during > before

    def test_weekend_cleaner_than_weekday(self):
        idx = np.arange(self.ds.num_intervals)
        weekend = self.ds.grid.is_weekend(idx)
        no2 = self.ds.flows[:, 1].sum(axis=(1, 2))
        assert no2[~weekend].mean() > no2[weekend].mean()


class TestEnergy:
    def setup_method(self):
        self.ds = energy_dataset(days=21, seed=2)

    def test_shapes(self):
        assert self.ds.flows.shape == (21 * 24, 2, 5, 8)
        assert np.all(self.ds.flows >= 0)

    def test_solar_zero_at_night(self):
        hours = self.ds.grid.hour_of_day(np.arange(self.ds.num_intervals))
        solar = self.ds.flows[:, 1].sum(axis=(1, 2))
        assert solar[hours == 0].max() == 0.0
        assert solar[hours == 12].min() > 0.0

    def test_evening_demand_peak(self):
        hours = self.ds.grid.hour_of_day(np.arange(self.ds.num_intervals))
        demand = self.ds.flows[:, 0].sum(axis=(1, 2))
        assert demand[hours == 20].mean() > demand[hours == 4].mean()

    def test_heat_wave_level_shift(self):
        ds = energy_dataset(days=35, seed=2)
        demand = ds.flows[:, 0].sum(axis=(1, 2))
        start = ds.grid.intervals_for_days(int(35 * 0.55))
        during = demand[start:start + 3 * 24].mean()
        before = demand[start - 6 * 24:start - 3 * 24].mean()
        assert during > 1.15 * before

    def test_reproducible(self):
        a = energy_dataset(days=7, seed=5)
        b = energy_dataset(days=7, seed=5)
        np.testing.assert_allclose(a.flows, b.flows)
