"""Tests for dataset factories and the end-to-end pipeline."""

import numpy as np
import pytest

from repro.data import (
    DATASET_NAMES,
    generate_pattern_flows,
    GridSpec,
    PatternConfig,
    load_dataset,
    prepare_forecast_data,
    synthetic_nyc_bike,
)


class TestFactories:
    def test_tiny_geometry(self):
        ds = synthetic_nyc_bike(scale="tiny")
        assert ds.flows.shape[1:] == (2, 4, 6)
        assert ds.grid.start_weekday == 4  # 2016-07-01 was a Friday

    def test_load_by_name(self):
        for name in DATASET_NAMES:
            ds = load_dataset(name, scale="tiny")
            assert ds.name == name
            assert ds.num_intervals == len(ds.flows)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            load_dataset("chicago")

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            load_dataset("nyc-bike", scale="huge")

    def test_deterministic_by_default(self):
        a = load_dataset("nyc-bike", scale="tiny")
        b = load_dataset("nyc-bike", scale="tiny")
        np.testing.assert_allclose(a.flows, b.flows)

    def test_seed_override_changes_data(self):
        a = load_dataset("nyc-bike", scale="tiny")
        b = load_dataset("nyc-bike", scale="tiny", seed=99)
        assert not np.allclose(a.flows, b.flows)

    def test_taxi_busier_than_bike(self):
        bike = load_dataset("nyc-bike", scale="tiny")
        taxi = load_dataset("nyc-taxi", scale="tiny")
        assert taxi.flows.sum() > bike.flows.sum()

    def test_periodicity_matches_sampling(self):
        ds = load_dataset("taxibj", scale="tiny")
        assert ds.periodicity.samples_per_day == ds.grid.samples_per_day

    def test_summary_mentions_name(self):
        assert "nyc-bike" in load_dataset("nyc-bike", scale="tiny").summary()

    def test_test_window_leaves_training_data(self):
        ds = load_dataset("nyc-bike", scale="tiny")
        usable = ds.num_intervals - ds.periodicity.min_index
        assert 0 < ds.test_window() < usable


class TestPatternGenerator:
    GRID = GridSpec(3, 4, interval_minutes=60)

    def test_shape_and_nonnegative(self):
        flows = generate_pattern_flows(self.GRID, 24 * 7)
        assert flows.shape == (168, 2, 3, 4)
        assert np.all(flows >= 0)

    def test_daily_peaks_on_weekdays(self):
        config = PatternConfig(noise_std=0.0)
        flows = generate_pattern_flows(self.GRID, 24 * 5, config=config)
        totals = flows.sum(axis=(1, 2, 3))
        hours = self.GRID.hour_of_day(np.arange(len(flows)))
        assert totals[hours == 8].mean() > totals[hours == 3].mean()

    def test_level_shift_applies(self):
        config = PatternConfig(noise_std=0.0, level_shift=(48, 2.0))
        flows = generate_pattern_flows(self.GRID, 96, config=config)
        base = generate_pattern_flows(self.GRID, 96, config=PatternConfig(noise_std=0.0))
        np.testing.assert_allclose(flows[60], base[60] * 2.0, rtol=1e-9)

    def test_event_spike(self):
        config = PatternConfig(noise_std=0.0, events=[(10, 1, 2, 50.0, 2)])
        flows = generate_pattern_flows(self.GRID, 24, config=config)
        base = generate_pattern_flows(self.GRID, 24, config=PatternConfig(noise_std=0.0))
        assert flows[10, 1, 1, 2] > base[10, 1, 1, 2] + 40

    def test_reproducible(self):
        a = generate_pattern_flows(self.GRID, 48, seed=5)
        b = generate_pattern_flows(self.GRID, 48, seed=5)
        np.testing.assert_allclose(a, b)


class TestPipeline:
    def test_splits_are_chronological(self):
        fd = prepare_forecast_data(load_dataset("nyc-bike", scale="tiny"))
        assert fd.train.indices.max() < fd.val.indices.min()
        assert fd.val.indices.max() < fd.test.indices.min()

    def test_training_targets_scaled_to_range(self):
        fd = prepare_forecast_data(load_dataset("nyc-bike", scale="tiny"))
        assert fd.train.target.min() >= -1.0 - 1e-9
        assert fd.train.target.max() <= 1.0 + 1e-9

    def test_inverse_restores_flow_units(self):
        ds = load_dataset("nyc-bike", scale="tiny")
        fd = prepare_forecast_data(ds)
        restored = fd.inverse(fd.train.target)
        original = ds.flows[fd.train.indices]
        np.testing.assert_allclose(restored, original, atol=1e-9)

    def test_multistep_horizon_margin(self):
        ds = load_dataset("nyc-bike", scale="tiny")
        h3 = prepare_forecast_data(ds, horizon=3)
        # Anchors never index beyond the last interval.
        assert h3.test.indices.max() <= ds.num_intervals - 1

    def test_sample_caps(self):
        ds = load_dataset("nyc-bike", scale="tiny")
        fd = prepare_forecast_data(ds, max_train_samples=16, max_test_samples=8)
        assert len(fd.train) == 16
        assert len(fd.test) == 8

    def test_caps_preserve_order(self):
        ds = load_dataset("nyc-bike", scale="tiny")
        fd = prepare_forecast_data(ds, max_train_samples=16)
        assert np.all(np.diff(fd.train.indices) > 0)
