"""Tests for the command-line interface and dataset I/O."""

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.data import load_dataset
from repro.data.io import load_dataset_file, save_dataset


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "nyc-bike"])
        assert args.scale == "tiny"
        assert args.out is None

    def test_simulate_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "chicago"])

    def test_train_profile_ops_flag(self):
        args = build_parser().parse_args(["train", "MUSE-Net", "--profile-ops"])
        assert args.profile_ops is True
        assert build_parser().parse_args(["train", "MUSE-Net"]).profile_ops is False

    def test_experiment_profile_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table2", "--profile", "gpu"])

    def test_train_sentinel_choices(self):
        args = build_parser().parse_args(
            ["train", "MUSE-Net", "--sentinel", "rollback"])
        assert args.sentinel == "rollback"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "MUSE-Net", "--sentinel", "explode"])

    def test_train_resume_and_checkpoint_flags(self):
        args = build_parser().parse_args(
            ["train", "MUSE-Net", "--checkpoint-dir", "runs/x",
             "--checkpoint-every", "2", "--resume"])
        assert args.checkpoint_dir == "runs/x"
        assert args.checkpoint_every == 2
        assert args.resume is True

    def test_evaluate_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "MUSE-Net"])

    def test_all_experiments_registered(self):
        expected = ({f"table{i}" for i in range(1, 7)}
                    | {f"fig{i}" for i in range(4, 10)}
                    | {"fig1", "fig2"})
        assert set(EXPERIMENTS) == expected


class TestCommands:
    def test_info_exit_code(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "MUSE-Net" in out
        assert "nyc-bike" in out

    def test_simulate_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "city.npz"
        assert main(["simulate", "nyc-bike", "--scale", "tiny",
                     "--out", str(out_file)]) == 0
        assert out_file.exists()

    def test_train_unknown_method_exit_code(self, capsys):
        assert main(["train", "ARIMA"]) == 2

    def test_experiment_unknown_name_exit_code(self, capsys):
        assert main(["experiment", "table99"]) == 2

    def test_complexity_prints_table(self, capsys):
        assert main(["complexity"]) == 0
        out = capsys.readouterr().out
        assert "MUSE-Net" in out
        assert "GMAN" in out


class TestOperationalErrors:
    """Operational failures exit non-zero with one-line messages."""

    def test_evaluate_missing_checkpoint_exits_1(self, capsys):
        assert main(["evaluate", "MUSE-Net",
                     "--checkpoint", "does-not-exist.npz"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "does-not-exist" in err
        assert "Traceback" not in err

    def test_evaluate_corrupt_checkpoint_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"this is not a zip archive")
        assert main(["evaluate", "MUSE-Net", "--checkpoint", str(bad)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "corrupt" in err
        assert "Traceback" not in err

    def test_evaluate_empty_directory_exits_1(self, tmp_path, capsys):
        assert main(["evaluate", "MUSE-Net", "--checkpoint",
                     str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "train with --checkpoint-dir" in err

    def test_invalid_config_value_exits_2(self, capsys):
        # checkpoint cadence without a directory is a config error.
        assert main(["train", "MUSE-Net", "--checkpoint-every", "2"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "checkpoint_dir" in err
        assert "Traceback" not in err

    def test_resume_without_dir_exits_2(self, capsys):
        assert main(["train", "MUSE-Net", "--resume"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_invalid_dtype_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "MUSE-Net", "--dtype", "float16"])


class TestServeCommand:
    def test_serve_parses_defaults(self):
        args = build_parser().parse_args(["serve", "MUSE-Net"])
        assert args.command == "serve"
        assert args.checkpoint is None
        assert args.requests == 64
        assert args.concurrency == 8
        assert args.max_batch == 32
        assert args.replicas == 0

    def test_serve_replays_traffic_and_gates_correctness(self, capsys):
        assert main(["serve", "MUSE-Net", "--requests", "12",
                     "--concurrency", "3", "--max-batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "12 requests" in out
        assert "p99" in out
        assert "served == offline predict_scaled" in out

    def test_serve_json_snapshot(self, capsys):
        import json

        assert main(["serve", "MUSE-Net", "--requests", "6",
                     "--concurrency", "2", "--format", "json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["requests"] == 6
        assert snap["max_abs_error_vs_offline"] <= 1e-6
        assert snap["latency_ms"]["p50"] >= 0

    def test_serve_missing_checkpoint_exits_1(self, capsys):
        assert main(["serve", "MUSE-Net",
                     "--checkpoint", "does-not-exist.npz"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_serve_corrupt_checkpoint_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"this is not a zip archive")
        assert main(["serve", "MUSE-Net", "--checkpoint", str(bad)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "corrupt" in err

    def test_serve_bad_config_exits_2(self, capsys):
        assert main(["serve", "MUSE-Net", "--max-batch", "0"]) == 2
        assert capsys.readouterr().err.startswith("error:")
        assert main(["serve", "MUSE-Net", "--requests", "0"]) == 2

    def test_serve_installed_checkpoint_drives_forecasts(self, tmp_path,
                                                         capsys):
        # Train briefly, checkpoint, then serve from the archive: the
        # hot-install path must run (generation 1) and still match the
        # offline evaluation of the *installed* weights.
        assert main(["train", "MUSE-Net", "--checkpoint-dir", str(tmp_path),
                     "--checkpoint-every", "1"]) == 0
        capsys.readouterr()
        assert main(["serve", "MUSE-Net", "--checkpoint", str(tmp_path),
                     "--requests", "6", "--concurrency", "2"]) == 0
        out = capsys.readouterr().out
        assert "generation 1" in out
        assert "served == offline predict_scaled" in out


class TestStreamCommand:
    def test_stream_parses_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.command == "stream"
        assert args.scenario == "clean"
        assert args.epochs == 8
        assert args.frozen is False
        assert args.format == "text"

    def test_stream_unknown_scenario_exits_2(self, capsys):
        assert main(["stream", "--scenario", "meteor"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "unknown scenario" in err

    def test_stream_clean_enforces_the_identity_gate(self, capsys):
        assert main(["stream", "--scenario", "clean", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "stream scenario 'clean'" in out
        assert "clean stream == offline predict_scaled: max|err| 0" in out
        assert "sources: model=80" in out

    def test_stream_corrupt_json_reports_fault_telemetry(self, capsys):
        import json

        assert main(["stream", "--scenario", "corrupt", "--frozen",
                     "--epochs", "1", "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        counts = report["telemetry"]["ingest"]["counts"]
        assert counts["quarantined"] == 5
        assert counts["gaps"] == 5
        assert report["ticks_forecast"] > 0


class TestDatasetIO:
    def test_round_trip(self, tmp_path):
        dataset = load_dataset("nyc-bike", scale="tiny")
        path = tmp_path / "bike.npz"
        save_dataset(dataset, path)
        loaded = load_dataset_file(path)
        assert loaded.name == dataset.name
        assert loaded.scale == dataset.scale
        assert loaded.grid == dataset.grid
        np.testing.assert_allclose(loaded.flows, dataset.flows)
        assert loaded.periodicity.len_trend == dataset.periodicity.len_trend

    def test_version_check(self, tmp_path):
        dataset = load_dataset("nyc-bike", scale="tiny")
        path = tmp_path / "bike.npz"
        save_dataset(dataset, path)
        data = dict(np.load(path))
        data["format_version"] = np.array(99)
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_dataset_file(path)

    def test_loaded_dataset_flows_are_writable(self, tmp_path):
        dataset = load_dataset("nyc-bike", scale="tiny")
        path = tmp_path / "bike.npz"
        save_dataset(dataset, path)
        loaded = load_dataset_file(path)
        loaded.flows[0] = 0.0  # must not raise (copy, not mmap view)
