"""Tests for seasonal decomposition and periodicity strength."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import periodicity_strength, seasonal_decompose
from repro.data import load_dataset


def periodic_series(length, period, amplitude=1.0, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    return amplitude * np.sin(2 * np.pi * t / period) + rng.normal(0, noise, length)


class TestDecompose:
    def test_reconstruction_exact(self):
        series = periodic_series(200, 24, noise=0.5)
        decomposition = seasonal_decompose(series, 24)
        np.testing.assert_allclose(decomposition.reconstruct(), series, atol=1e-10)

    def test_seasonal_has_period_structure(self):
        series = periodic_series(240, 24)
        decomposition = seasonal_decompose(series, 24)
        np.testing.assert_allclose(
            decomposition.seasonal[:24], decomposition.seasonal[24:48], atol=1e-10
        )

    def test_seasonal_zero_mean_profile(self):
        series = periodic_series(240, 24) + 5.0
        decomposition = seasonal_decompose(series, 24)
        assert abs(decomposition.seasonal[:24].mean()) < 1e-10

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            seasonal_decompose(np.zeros((4, 4)), 2)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            seasonal_decompose(np.zeros(20), 1)
        with pytest.raises(ValueError):
            seasonal_decompose(np.zeros(20), 15)


class TestStrength:
    def test_pure_periodic_near_one(self):
        series = periodic_series(480, 24, noise=0.0)
        assert periodicity_strength(series, 24) > 0.95

    def test_pure_noise_near_zero(self):
        rng = np.random.default_rng(0)
        series = rng.standard_normal(480)
        assert periodicity_strength(series, 24) < 0.2

    def test_wrong_period_scores_lower(self):
        series = periodic_series(480, 24, noise=0.1)
        right = periodicity_strength(series, 24)
        wrong = periodicity_strength(series, 17)
        assert right > wrong

    def test_constant_series_zero(self):
        assert periodicity_strength(np.ones(100), 10) == 0.0

    @given(st.integers(0, 100), st.floats(0.1, 2.0))
    @settings(max_examples=25, deadline=None)
    def test_strength_bounded(self, seed, noise):
        series = periodic_series(200, 20, noise=noise, seed=seed)
        strength = periodicity_strength(series, 20)
        assert 0.0 <= strength <= 1.0

    def test_synthetic_traffic_is_daily_periodic(self):
        # The claim the whole reproduction rests on: the substrate
        # carries strong daily periodicity, like the real datasets.
        dataset = load_dataset("nyc-bike", scale="tiny")
        series = dataset.flows[:, 1].sum(axis=(1, 2))
        f = dataset.grid.samples_per_day
        daily = periodicity_strength(series, f)
        assert daily > 0.5
