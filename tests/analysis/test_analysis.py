"""Tests for t-SNE, similarity, and complexity analyses."""

import numpy as np
import pytest

from repro.analysis import (
    complexity_table,
    cosine_similarity_matrix,
    diagonal_similarity,
    flatten_per_sample,
    silhouette_score,
    tsne,
)


def gaussian_clusters(rng, centers, per_cluster=20, dim=10, spread=0.3):
    points, labels = [], []
    for label, center in enumerate(centers):
        blob = rng.standard_normal((per_cluster, dim)) * spread + center
        points.append(blob)
        labels.extend([label] * per_cluster)
    return np.concatenate(points), np.array(labels)


class TestTSNE:
    def test_output_shape(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((30, 8))
        y = tsne(x, iterations=50, seed=0)
        assert y.shape == (30, 2)

    def test_deterministic(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((20, 5))
        a = tsne(x, iterations=50, seed=1)
        b = tsne(x, iterations=50, seed=1)
        np.testing.assert_allclose(a, b)

    def test_separates_well_separated_clusters(self):
        rng = np.random.default_rng(0)
        centers = [np.zeros(10), np.full(10, 8.0), np.concatenate([np.full(5, -8.0), np.zeros(5)])]
        points, labels = gaussian_clusters(rng, centers)
        embedding = tsne(points, iterations=250, seed=0)
        # Clusters that are separated in input space must stay separated
        # in the embedding.
        assert silhouette_score(embedding, labels) > 0.5

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            tsne(np.zeros((3, 4)))

    def test_output_centered(self):
        rng = np.random.default_rng(0)
        y = tsne(rng.standard_normal((15, 6)), iterations=30, seed=0)
        np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-9)


class TestSilhouette:
    def test_perfect_separation_near_one(self):
        points = np.array([[0.0, 0], [0.1, 0], [10.0, 0], [10.1, 0]])
        labels = np.array([0, 0, 1, 1])
        assert silhouette_score(points, labels) > 0.9

    def test_random_labels_near_zero(self):
        rng = np.random.default_rng(0)
        points = rng.standard_normal((60, 4))
        labels = rng.integers(0, 2, size=60)
        assert abs(silhouette_score(points, labels)) < 0.2

    def test_single_cluster_raises(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((4, 2)), np.zeros(4))


class TestSimilarity:
    def test_self_similarity_is_one(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((5, 7))
        np.testing.assert_allclose(np.diag(cosine_similarity_matrix(a, a)), 1.0)

    def test_orthogonal_vectors_zero(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        np.testing.assert_allclose(cosine_similarity_matrix(a, b), [[0.0]], atol=1e-12)

    def test_opposite_vectors_minus_one(self):
        a = np.array([[1.0, 2.0]])
        np.testing.assert_allclose(cosine_similarity_matrix(a, -a), [[-1.0]])

    def test_matrix_shape(self):
        rng = np.random.default_rng(0)
        sim = cosine_similarity_matrix(rng.standard_normal((4, 3, 3)),
                                       rng.standard_normal((6, 9)))
        assert sim.shape == (4, 6)

    def test_bounded(self):
        rng = np.random.default_rng(0)
        sim = cosine_similarity_matrix(rng.standard_normal((10, 5)),
                                       rng.standard_normal((10, 5)))
        assert np.all(sim <= 1.0 + 1e-12)
        assert np.all(sim >= -1.0 - 1e-12)

    def test_diagonal_matches_matrix_diagonal(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((6, 8))
        b = rng.standard_normal((6, 8))
        np.testing.assert_allclose(
            diagonal_similarity(a, b), np.diag(cosine_similarity_matrix(a, b))
        )

    def test_diagonal_length_mismatch(self):
        with pytest.raises(ValueError):
            diagonal_similarity(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_flatten_per_sample(self):
        assert flatten_per_sample(np.zeros((4, 2, 3))).shape == (4, 6)

    def test_zero_vector_does_not_nan(self):
        sim = cosine_similarity_matrix(np.zeros((1, 3)), np.ones((1, 3)))
        assert np.isfinite(sim).all()


class TestComplexity:
    def test_four_methods(self):
        entries = complexity_table(L=11, d=64, M=200)
        assert [e.method for e in entries] == ["DeepSTN+", "DMSTGCN", "GMAN", "MUSE-Net"]

    def test_musenet_matches_deepstn(self):
        # Table I: MUSE-Net has the same asymptotic complexity as DeepSTN+.
        entries = {e.method: e for e in complexity_table(L=11, d=64, M=200)}
        assert entries["MUSE-Net"].time_value == entries["DeepSTN+"].time_value
        assert entries["MUSE-Net"].space_value == entries["DeepSTN+"].space_value

    def test_gman_slower_for_large_grids(self):
        # The paper argues MUSE-Net is faster than GMAN because L, d << M.
        entries = {e.method: e for e in complexity_table(L=11, d=64, M=1024)}
        assert entries["MUSE-Net"].time_value < entries["GMAN"].time_value

    def test_dense_graph_hurts_dmstgcn(self):
        # With E -> M^2, DMSTGCN's time exceeds MUSE-Net's.
        M = 1024
        entries = {e.method: e for e in complexity_table(L=11, d=64, M=M, E=M * M)}
        assert entries["DMSTGCN"].time_value > entries["MUSE-Net"].time_value

    def test_default_edge_count_is_lattice(self):
        sparse = complexity_table(L=11, d=64, M=200)
        explicit = complexity_table(L=11, d=64, M=200, E=400)
        assert sparse[1].time_value == explicit[1].time_value
