"""Tests for the terminal visualization helpers."""

import numpy as np
import pytest

from repro.viz import heatmap, histogram, line_chart, sparkline


class TestSparkline:
    def test_monotone_ramp(self):
        out = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert out == "▁▂▃▄▅▆▇█"

    def test_constant_series(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_nan_renders_space(self):
        out = sparkline([1.0, float("nan"), 2.0])
        assert out[1] == " "

    def test_pinned_scale(self):
        # With the scale pinned to [0, 100], small values stay low.
        out = sparkline([2, 2], low=0, high=100)
        assert set(out) == {"▁"}

    def test_length_matches_input(self):
        assert len(sparkline(np.arange(17))) == 17


class TestLineChart:
    def test_contains_extremes_and_legend(self):
        chart = line_chart({"a": [0.0, 5.0, 10.0]}, height=5)
        assert "10.00" in chart
        assert "0.00" in chart
        assert "a" in chart

    def test_accepts_plain_array(self):
        chart = line_chart(np.array([1.0, 2.0, 3.0]))
        assert "series" in chart

    def test_multiple_series_distinct_markers(self):
        chart = line_chart({"up": [0, 1, 2], "down": [2, 1, 0]}, height=4)
        assert "•" in chart
        assert "x" in chart

    def test_width_resamples(self):
        chart = line_chart({"long": np.arange(500)}, height=4, width=40)
        longest = max(len(line) for line in chart.splitlines())
        assert longest < 70

    def test_empty_dict(self):
        assert line_chart({}) == "(no data)"


class TestHeatmap:
    def test_extremes_use_extreme_shades(self):
        out = heatmap(np.array([[0.0, 1.0]]))
        assert "█" in out
        assert " " in out

    def test_row_labels(self):
        out = heatmap(np.eye(2), row_labels=["rowA", "rowB"])
        assert "rowA" in out

    def test_accepts_1d(self):
        assert len(heatmap(np.array([1.0, 2.0])).splitlines()) == 1

    def test_constant_matrix(self):
        out = heatmap(np.ones((2, 2)))
        assert set("".join(out.splitlines())) <= {" "}


class TestHistogram:
    def test_counts_sum(self):
        values = np.random.default_rng(0).standard_normal(100)
        out = histogram(values, bins=5)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in out.splitlines()]
        assert sum(counts) == 100

    def test_bin_count(self):
        out = histogram(np.arange(10), bins=4)
        assert len(out.splitlines()) == 4

    def test_empty_bins_have_no_bar(self):
        out = histogram(np.array([0.0, 0.0, 10.0]), bins=10)
        assert any("█" not in line for line in out.splitlines())
