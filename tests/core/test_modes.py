"""Tests for spatial_mode / pull_mode switches and extension ablations."""

import numpy as np
import pytest
from dataclasses import replace

from repro.core import MUSENet, muse_training_loss
from repro.optim import Adam, clip_grad_norm


class TestSpatialModes:
    @pytest.mark.parametrize("mode", ["resplus", "conv", "none"])
    def test_forward_shapes(self, mode, tiny_data, tiny_config):
        model = MUSENet(replace(tiny_config, spatial_mode=mode))
        prediction = model.predict(tiny_data.test)
        assert prediction.shape == tiny_data.test.target.shape
        assert np.all(np.abs(prediction) <= 1.0)

    def test_unknown_mode_raises(self, tiny_config):
        with pytest.raises(ValueError):
            MUSENet(replace(tiny_config, spatial_mode="transformer"))

    def test_use_spatial_false_overrides_config(self, tiny_config):
        model = MUSENet(replace(tiny_config, spatial_mode="resplus"),
                        use_spatial=False)
        assert model.spatial_mode == "none"

    def test_parameter_count_ordering(self, tiny_config):
        counts = {
            mode: MUSENet(replace(tiny_config, spatial_mode=mode)).num_parameters()
            for mode in ("resplus", "conv", "none")
        }
        assert counts["none"] < counts["conv"] < counts["resplus"]

    def test_conv_mode_trains(self, tiny_data, tiny_config):
        model = MUSENet(replace(tiny_config, spatial_mode="conv"))
        optimizer = Adam(model.parameters(), lr=1e-3)
        batch = tiny_data.train.take(range(8))
        first = last = None
        rng = np.random.default_rng(0)
        for _ in range(6):
            optimizer.zero_grad()
            breakdown, _ = model.training_loss(batch, rng=rng)
            breakdown.total.backward()
            clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()
            first = breakdown.reg.item() if first is None else first
            last = breakdown.reg.item()
        assert last < first


class TestPullModes:
    def test_invalid_pull_mode_raises(self, tiny_data, tiny_config):
        model = MUSENet(replace(tiny_config, pull_mode="magic"))
        with pytest.raises(ValueError):
            model.training_loss(tiny_data.train.take(range(4)),
                                rng=np.random.default_rng(0))

    def test_joint_mode_runs_but_value_differs(self, tiny_data, tiny_config):
        batch = tiny_data.train.take(range(4))
        alternating = MUSENet(replace(tiny_config, pull_mode="alternating"))
        joint = MUSENet(replace(tiny_config, pull_mode="joint"))
        a, _ = alternating.training_loss(batch, rng=np.random.default_rng(0))
        j, _ = joint.training_loss(batch, rng=np.random.default_rng(0))
        # Same initial weights (same seed), but the joint objective
        # subtracts KL(r||d) at value level while the alternating one
        # cancels it — the totals must differ.
        assert a.total.item() != pytest.approx(j.total.item())

    def test_gen_weight_zero_reduces_to_regression(self, tiny_data, tiny_config):
        model = MUSENet(replace(tiny_config, gen_weight=0.0))
        breakdown, _ = model.training_loss(tiny_data.train.take(range(4)),
                                           rng=np.random.default_rng(0))
        assert breakdown.total.item() == pytest.approx(breakdown.reg.item())
