"""Tests for the full MUSE-Net model and its objective."""

import numpy as np
import pytest

from repro.core import MUSENet, MuseConfig, make_variant, muse_training_loss
from repro.core.losses import UNORDERED_PAIRS
from repro.optim import Adam, clip_grad_norm
from repro.tensor import Tensor


class TestConfig:
    def test_defaults_match_paper(self):
        config = MuseConfig()
        assert (config.len_closeness, config.len_period, config.len_trend) == (3, 4, 4)
        assert config.rep_channels == 64
        assert config.latent_interactive == 128
        assert config.latent_exclusive == 32  # k / 4
        assert config.lam == 1.0

    def test_for_data_matches_geometry(self, tiny_data, tiny_config):
        assert tiny_config.height == tiny_data.grid.height
        assert tiny_config.len_closeness == tiny_data.periodicity.len_closeness

    def test_series_length_lookup(self):
        config = MuseConfig(len_closeness=5, len_period=6, len_trend=7)
        assert config.series_length("c") == 5
        assert config.series_length("p") == 6
        assert config.series_length("t") == 7


class TestForward:
    def test_output_shapes(self, tiny_data, tiny_config):
        model = MUSENet(tiny_config)
        batch = tiny_data.train.take(range(4))
        outputs = model(batch.closeness, batch.period, batch.trend,
                        rng=np.random.default_rng(0))
        h, w = tiny_config.height, tiny_config.width
        assert outputs.prediction.shape == (4, 2, h, w)
        for key in ("c", "p", "t", "s"):
            assert outputs.representations[key].shape == (4, tiny_config.rep_channels, h, w)
        for key in ("c", "p", "t"):
            assert outputs.exclusive_posteriors[key].dim == tiny_config.latent_exclusive
            assert outputs.reconstructions[key].shape == outputs.series_inputs[key].shape
        assert outputs.interactive_posterior.dim == tiny_config.latent_interactive
        assert set(outputs.duplex_posteriors) == set(UNORDERED_PAIRS)

    def test_prediction_in_tanh_range(self, tiny_data, tiny_config):
        model = MUSENet(tiny_config)
        prediction = model.predict(tiny_data.test)
        assert np.all(np.abs(prediction) <= 1.0)

    def test_predict_is_deterministic(self, tiny_data, tiny_config):
        model = MUSENet(tiny_config)
        a = model.predict(tiny_data.test)
        b = model.predict(tiny_data.test)
        np.testing.assert_allclose(a, b)

    def test_same_seed_same_model(self, tiny_data, tiny_config):
        a = MUSENet(tiny_config).predict(tiny_data.test)
        b = MUSENet(tiny_config).predict(tiny_data.test)
        np.testing.assert_allclose(a, b)


class TestLoss:
    def test_components_present_and_finite(self, tiny_data, tiny_config):
        model = MUSENet(tiny_config)
        breakdown, _ = model.training_loss(tiny_data.train.take(range(4)),
                                           rng=np.random.default_rng(0))
        for value in breakdown.scalars().values():
            assert np.isfinite(value)

    def test_total_is_sum_of_components(self, tiny_data, tiny_config):
        model = MUSENet(tiny_config)
        breakdown, _ = model.training_loss(tiny_data.train.take(range(4)),
                                           rng=np.random.default_rng(0))
        s = breakdown.scalars()
        np.testing.assert_allclose(
            s["total"], s["dis"] + s["push"] + s["pull"] + s["reg"], rtol=1e-9
        )

    def test_lambda_zero_reduces_weights(self, tiny_data, tiny_config):
        # With lambda = 0 the push weight is 1, so the full objective
        # equals the no-push objective.
        batch = tiny_data.train.take(range(4))
        config = MuseConfig.for_data(tiny_data, rep_channels=8,
                                     latent_interactive=16, res_blocks=1,
                                     plus_channels=2, decoder_hidden=32, lam=0.0)
        model = MUSENet(config)
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        with_push, _ = model.training_loss(batch, rng=rng_a, use_push=True, use_pull=False)
        without_push, _ = model.training_loss(batch, rng=rng_b, use_push=False, use_pull=False)
        np.testing.assert_allclose(with_push.total.item(), without_push.total.item(),
                                   rtol=1e-9)

    def test_no_pull_zeroes_pull_component(self, tiny_data, tiny_config):
        model = MUSENet(tiny_config, use_pull=False)
        breakdown, _ = model.training_loss(tiny_data.train.take(range(4)),
                                           rng=np.random.default_rng(0))
        assert breakdown.pull.item() == 0.0

    def test_gradients_reach_all_parameters(self, tiny_data, tiny_config):
        model = MUSENet(tiny_config)
        breakdown, _ = model.training_loss(tiny_data.train.take(range(4)),
                                           rng=np.random.default_rng(0))
        breakdown.total.backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        assert missing == []

    def test_loss_decreases_under_training(self, tiny_data, tiny_config):
        model = MUSENet(tiny_config)
        optimizer = Adam(model.parameters(), lr=1e-3)
        rng = np.random.default_rng(0)
        batch = tiny_data.train.take(range(16))
        first = last = None
        for step in range(12):
            optimizer.zero_grad()
            breakdown, _ = model.training_loss(batch, rng=rng)
            breakdown.total.backward()
            clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()
            if first is None:
                first = breakdown.reg.item()
            last = breakdown.reg.item()
        assert last < first


class TestVariants:
    @pytest.mark.parametrize("name", ["full", "w/o-Spatial", "w/o-MultiDisentangle",
                                      "w/o-SemanticPushing", "w/o-SemanticPulling"])
    def test_variant_trains_one_step(self, name, tiny_data, tiny_config):
        model = make_variant(name, tiny_config)
        optimizer = Adam(model.parameters(), lr=1e-3)
        batch = tiny_data.train.take(range(4))
        breakdown, outputs = model.training_loss(batch, rng=np.random.default_rng(0))
        assert np.isfinite(breakdown.total.item())
        breakdown.total.backward()
        optimizer.step()
        assert outputs.prediction.shape == (4, 2, tiny_config.height, tiny_config.width)

    def test_unknown_variant(self, tiny_config):
        with pytest.raises(ValueError):
            make_variant("w/o-Everything", tiny_config)

    def test_no_spatial_has_fewer_parameters(self, tiny_config):
        full = make_variant("full", tiny_config)
        no_spatial = make_variant("w/o-Spatial", tiny_config)
        assert no_spatial.num_parameters() < full.num_parameters()

    def test_pairwise_variant_predicts(self, tiny_data, tiny_config):
        model = make_variant("w/o-MultiDisentangle", tiny_config)
        prediction = model.predict(tiny_data.test)
        assert prediction.shape == tiny_data.test.target.shape


class TestPullStability:
    def test_pull_does_not_diverge(self, tiny_data, tiny_config):
        # Regression test for the adversarial +KL(r || d) term: with the
        # stop-gradient treatment the total loss must stay finite and
        # bounded over a burst of full-batch steps.
        model = MUSENet(tiny_config)
        optimizer = Adam(model.parameters(), lr=2e-3)
        rng = np.random.default_rng(0)
        batch = tiny_data.train.take(range(16))
        totals = []
        for _ in range(25):
            optimizer.zero_grad()
            breakdown, _ = model.training_loss(batch, rng=rng)
            breakdown.total.backward()
            clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()
            totals.append(breakdown.total.item())
        assert np.all(np.isfinite(totals))
        assert totals[-1] > -1e4  # the un-fixed objective reached -1e7 here
