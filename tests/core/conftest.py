"""Shared fixtures for core-model tests: a tiny prepared dataset."""

import pytest

from repro.core import MuseConfig
from repro.data import load_dataset, prepare_forecast_data


@pytest.fixture(scope="session")
def tiny_data():
    """Tiny NYC-Bike analogue prepared for forecasting (cached)."""
    dataset = load_dataset("nyc-bike", scale="tiny")
    return prepare_forecast_data(dataset, max_train_samples=32, max_test_samples=12)


@pytest.fixture(scope="session")
def tiny_config(tiny_data):
    """Model config matched to the tiny dataset, sized for speed."""
    return MuseConfig.for_data(
        tiny_data,
        rep_channels=8,
        latent_interactive=16,
        res_blocks=1,
        plus_channels=2,
        decoder_hidden=32,
    )
