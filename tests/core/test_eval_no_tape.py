"""Evaluation must not record an autodiff tape (ISSUE 5 satellite).

``Trainer.predict_scaled`` wraps its chunk loop in ``no_grad()`` so
models whose ``predict`` does not guard itself cannot leak a tape per
evaluation batch.  The regression model here is deliberately unguarded:
the trainer-level guard is the only thing keeping the tape empty.
"""

from types import SimpleNamespace

import numpy as np

from repro.core.losses import LossBreakdown
from repro.nn import Linear, Module
from repro.nn.losses import mse_loss
from repro.profiling import profile
from repro.tensor import Tensor
from repro.training import TrainConfig, Trainer


class UnguardedForecaster(Module):
    """Protocol model whose ``predict`` does *not* use ``no_grad``."""

    def __init__(self, data, seed=0):
        super().__init__()
        _n, length, channels, height, width = data.train.closeness.shape
        self._target_shape = (channels, height, width)
        self.linear = Linear(length * channels * height * width,
                             channels * height * width,
                             rng=np.random.default_rng(seed))

    def forward(self, closeness):
        flat = Tensor(closeness.reshape(closeness.shape[0], -1))
        return self.linear(flat)

    def training_loss(self, batch, rng=None):
        prediction = self.forward(batch.closeness)
        target = Tensor(batch.target.reshape(len(batch), -1))
        reg = mse_loss(prediction, target)
        zero = Tensor(0.0)
        return (LossBreakdown(total=reg, dis=zero, push=zero, pull=zero,
                              reg=reg),
                SimpleNamespace(prediction=prediction))

    def predict(self, batch):
        # No no_grad() on purpose: with gradients enabled this records
        # a tape node per op, per evaluation chunk.
        prediction = self.forward(batch.closeness)
        return prediction.data.reshape((len(batch),) + self._target_shape)


class TestEvaluationRecordsNoTape:
    def test_predict_scaled_runs_tape_free(self, tiny_data):
        trainer = Trainer(UnguardedForecaster(tiny_data),
                          TrainConfig(eval_batch_size=4))
        with profile() as prof:
            prediction = trainer.predict_scaled(tiny_data.test)
        assert prediction.shape[0] == len(tiny_data.test)
        # Ops ran (the forward is observed) but none joined the tape.
        assert prof.stats["matmul"].calls >= 1
        assert prof.tape_bytes == 0
        assert prof.peak_tape_bytes == 0

    def test_evaluate_runs_tape_free(self, tiny_data):
        trainer = Trainer(UnguardedForecaster(tiny_data),
                          TrainConfig(eval_batch_size=4))
        with profile() as prof:
            report = trainer.evaluate(tiny_data)
        assert np.isfinite(report.outflow_rmse)
        assert prof.peak_tape_bytes == 0

    def test_chunked_eval_uses_contiguous_views(self, tiny_data):
        # The chunk loop slices, not fancy-indexes: chunks alias the
        # evaluation batch's storage instead of copying it.
        chunk = tiny_data.test.slice(0, 4)
        assert np.shares_memory(chunk.closeness, tiny_data.test.closeness)
        trainer = Trainer(UnguardedForecaster(tiny_data),
                          TrainConfig(eval_batch_size=4))
        small = trainer.predict_scaled(tiny_data.test)
        trainer.config.eval_batch_size = 64
        big = trainer.predict_scaled(tiny_data.test)
        np.testing.assert_allclose(small, big)
