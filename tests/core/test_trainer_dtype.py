"""Trainer precision policy: ``Trainer(dtype=...)`` end to end."""

import numpy as np
import pytest

from repro.core import MUSENet
from repro.optim import Adam
from repro.training import TrainConfig, Trainer, load_checkpoint, save_checkpoint


def _tiny_train_config(**overrides):
    defaults = dict(epochs=1, batch_size=8, lr=1e-3, seed=0)
    defaults.update(overrides)
    return TrainConfig(**defaults)


class TestTrainerDtype:
    def test_dtype_kwarg_casts_model_before_optimizer(self, tiny_config):
        model = MUSENet(tiny_config)
        trainer = Trainer(model, _tiny_train_config(), dtype="float32")
        assert trainer.dtype == np.float32
        for param in model.parameters():
            assert param.data.dtype == np.float32

    def test_config_dtype_used_when_kwarg_absent(self, tiny_config):
        model = MUSENet(tiny_config)
        trainer = Trainer(model, _tiny_train_config(dtype="float32"))
        assert trainer.dtype == np.float32

    def test_kwarg_overrides_config(self, tiny_config):
        model = MUSENet(tiny_config)
        trainer = Trainer(model, _tiny_train_config(dtype="float32"),
                          dtype="float64")
        assert trainer.dtype == np.float64

    def test_non_float_dtype_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            Trainer(MUSENet(tiny_config), _tiny_train_config(), dtype="int64")

    def test_default_keeps_float64(self, tiny_config):
        model = MUSENet(tiny_config)
        trainer = Trainer(model, _tiny_train_config())
        assert trainer.dtype is None
        for param in model.parameters():
            assert param.data.dtype == np.float64

    def test_fit_and_predict_stay_float32(self, tiny_data, tiny_config):
        model = MUSENet(tiny_config)
        trainer = Trainer(model, _tiny_train_config(), dtype="float32")
        trainer.fit(tiny_data)
        for param in model.parameters():
            assert param.data.dtype == np.float32
        # Optimizer slot variables follow the parameter dtype.
        for state in trainer.optimizer._state:
            for value in state.values():
                if isinstance(value, np.ndarray):
                    assert value.dtype == np.float32
        prediction = trainer.predict_scaled(tiny_data.test)
        assert prediction.dtype == np.float32
        report = trainer.evaluate(tiny_data)
        assert np.isfinite(report.outflow_rmse)

    def test_fit_restores_ambient_policy(self, tiny_data, tiny_config):
        from repro.tensor import get_default_dtype

        model = MUSENet(tiny_config)
        Trainer(model, _tiny_train_config(), dtype="float32").fit(tiny_data)
        assert get_default_dtype() == np.float64


class TestCheckpointDtype:
    def test_checkpoint_records_and_restores_dtype(self, tiny_config, tmp_path):
        model = MUSENet(tiny_config)
        trainer = Trainer(model, _tiny_train_config(), dtype="float32")
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, trainer.optimizer)
        with np.load(path) as archive:
            assert str(archive["model_dtype"]) == "float32"

        # A float64 model restored from a float32 checkpoint is recast.
        fresh = MUSENet(tiny_config)
        assert fresh.parameters()[0].data.dtype == np.float64
        load_checkpoint(path, fresh, Adam(fresh.parameters(), lr=1e-3))
        for param in fresh.parameters():
            assert param.data.dtype == np.float32
