"""Tests for the Trainer harness and metrics."""

import numpy as np
import pytest

from repro.core import MUSENet
from repro.metrics import EvalReport, evaluate_flows, mae, mape, rmse
from repro.training import TrainConfig, Trainer


class TestMetrics:
    def test_rmse_zero_for_perfect(self):
        x = np.random.default_rng(0).uniform(0, 5, (4, 2, 3, 3))
        assert rmse(x, x) == 0.0

    def test_rmse_known_value(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_mae_known_value(self):
        assert mae(np.array([0.0, 0.0]), np.array([3.0, -4.0])) == 3.5

    def test_mape_masks_small_targets(self):
        prediction = np.array([1.0, 100.0])
        target = np.array([0.01, 50.0])  # first entry below threshold
        assert mape(prediction, target) == pytest.approx(1.0)

    def test_mape_nan_when_all_masked(self):
        assert np.isnan(mape(np.array([1.0]), np.array([0.0])))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(4))

    def test_mask_argument(self):
        prediction = np.array([0.0, 10.0])
        target = np.array([0.0, 0.0])
        assert rmse(prediction, target, mask=np.array([True, False])) == 0.0

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(3), mask=np.zeros(3, dtype=bool))

    def test_sample_mask_selects_samples_not_columns(self):
        # Seed regression: a 1-D mask of length N against an (N, M)
        # target hit numpy's *trailing* broadcast and silently selected
        # columns.  The mask must align to the leading (sample) axis:
        # keeping sample 0 of this pair gives a perfect score; keeping
        # column 0 would average in the error at [1, 0].
        prediction = np.array([[0.0, 0.0], [10.0, 0.0]])
        target = np.zeros((2, 2))
        assert rmse(prediction, target, mask=np.array([True, False])) == 0.0
        assert mae(prediction, target, mask=np.array([True, False])) == 0.0
        # Hand-computed with sample 1 kept: errors (10, 0).
        assert rmse(prediction, target,
                    mask=np.array([False, True])) == pytest.approx(
            np.sqrt(50.0))
        assert mae(prediction, target,
                   mask=np.array([False, True])) == 5.0

    def test_cell_mask_still_broadcasts_on_trailing_axes(self):
        # A (H, W)-shaped mask is a cell mask: ordinary trailing
        # broadcast across samples and channels.
        prediction = np.zeros((3, 2, 2, 2))
        target = np.zeros((3, 2, 2, 2))
        prediction[..., 0, 1] = 4.0  # error only in the masked-out cell
        cell_mask = np.array([[True, False], [True, True]])
        assert rmse(prediction, target, mask=cell_mask) == 0.0

    def test_unresolvable_mask_shape_raises(self):
        with pytest.raises(ValueError, match="mask shape"):
            rmse(np.zeros((4, 3)), np.zeros((4, 3)),
                 mask=np.ones(2, dtype=bool))

    def test_mape_mask_intersects_threshold(self):
        # Hand-computed: the mask keeps samples 0 and 1; within those,
        # only targets clearing |t| >= 1 contribute.  Sample 2 (error
        # 100%) must not leak in through either branch.
        prediction = np.array([2.0, 5.0, 20.0])
        target = np.array([1.0, 0.5, 10.0])
        mask = np.array([True, True, False])
        # Survivors of mask ∩ threshold: only index 0 -> |2-1|/1 = 1.0
        assert mape(prediction, target, mask=mask) == pytest.approx(1.0)
        # All masked-in targets below threshold -> nan, not an average
        # over the (masked-out but above-threshold) index 2.
        assert np.isnan(mape(prediction, target,
                             mask=np.array([False, True, False])))

    def test_mape_masked_known_value(self):
        prediction = np.array([[2.0, 8.0], [30.0, 7.0]])
        target = np.array([[1.0, 4.0], [10.0, 0.2]])
        # Sample mask keeps row 1; threshold then drops target 0.2:
        # survivors {30 vs 10} -> 2.0 exactly.
        assert mape(prediction, target,
                    mask=np.array([False, True])) == pytest.approx(2.0)

    def test_evaluate_flows_channels(self):
        rng = np.random.default_rng(0)
        target = rng.uniform(1, 10, (6, 2, 3, 3))
        prediction = target.copy()
        prediction[:, 0] += 1.0  # bias only the outflow channel
        report = evaluate_flows(prediction, target)
        assert report.outflow_rmse == pytest.approx(1.0)
        assert report.inflow_rmse == 0.0

    def test_evaluate_flows_sample_mask(self):
        rng = np.random.default_rng(0)
        target = rng.uniform(1, 10, (6, 2, 3, 3))
        prediction = target.copy()
        prediction[3:] += 5.0
        clean = evaluate_flows(prediction, target,
                               sample_mask=np.array([1, 1, 1, 0, 0, 0], dtype=bool))
        assert clean.outflow_rmse == 0.0

    def test_evaluate_flows_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            evaluate_flows(np.zeros((3, 4)), np.zeros((3, 4)))

    def test_report_row_order(self):
        report = EvalReport(1, 2, 3, 4, 5, 6)
        assert report.row() == (1, 2, 3, 4, 5, 6)
        assert "RMSE" in str(report)


class TestTrainer:
    def test_fit_improves_validation(self, tiny_data, tiny_config):
        model = MUSENet(tiny_config)
        trainer = Trainer(model, TrainConfig(epochs=5, lr=1e-3, seed=0))
        history = trainer.fit(tiny_data)
        assert history.epochs_run == 5
        assert history.val_rmse[-1] < history.val_rmse[0]

    def test_best_weights_restored(self, tiny_data, tiny_config):
        model = MUSENet(tiny_config)
        trainer = Trainer(model, TrainConfig(epochs=4, lr=1e-3, seed=0))
        history = trainer.fit(tiny_data)
        # After fit, evaluating val must reproduce the best epoch's rmse.
        prediction = trainer.predict_flows(tiny_data, tiny_data.val)
        truth = tiny_data.inverse(tiny_data.val.target)
        assert rmse(prediction, truth) == pytest.approx(history.best_val_rmse, rel=1e-9)

    def test_early_stopping(self, tiny_data, tiny_config):
        model = MUSENet(tiny_config)
        trainer = Trainer(model, TrainConfig(epochs=50, lr=1e-9, patience=1,
                                             min_delta=0.5, seed=0))
        history = trainer.fit(tiny_data)
        # With a vanishing lr nothing improves beyond min_delta, so
        # training stops early.
        assert history.stopped_early
        assert history.epochs_run < 50

    def test_early_stopping_patience_is_exact(self, tiny_data, tiny_config):
        # Regression: `bad_epochs > patience` tolerated patience + 1
        # non-improving epochs.  With patience=1 the run must stop right
        # after the first non-improving epoch: epoch 0 improves (first
        # val-RMSE is always a new best), epoch 1 does not -> 2 epochs.
        model = MUSENet(tiny_config)
        trainer = Trainer(model, TrainConfig(epochs=50, lr=1e-9, patience=1,
                                             min_delta=100.0, seed=0))
        history = trainer.fit(tiny_data)
        assert history.stopped_early
        assert history.epochs_run == 2

    def test_telemetry_recorded(self, tiny_data, tiny_config):
        model = MUSENet(tiny_config)
        trainer = Trainer(model, TrainConfig(epochs=2, lr=1e-3))
        history = trainer.fit(tiny_data)
        assert len(history.epoch_time) == history.epochs_run == 2
        assert all(t > 0 for t in history.epoch_time)
        assert all(b > 0 for b in history.batches_per_sec)
        assert history.total_time == pytest.approx(sum(history.epoch_time))
        assert "epochs in" in history.telemetry_summary()
        assert trainer.history is history

    def test_profile_ops_collects_op_profile(self, tiny_data, tiny_config):
        from repro.profiling import get_active_profiler

        model = MUSENet(tiny_config)
        trainer = Trainer(model, TrainConfig(epochs=1, lr=1e-3, profile_ops=True))
        history = trainer.fit(tiny_data)
        assert history.op_profile is not None
        ops = history.op_profile["ops"]
        assert "conv2d" in ops
        assert ops["conv2d"]["backward_calls"] > 0
        assert history.peak_tape_bytes > 0
        # The profiler must be uninstalled once fit() returns.
        assert get_active_profiler() is None

    def test_profile_ops_off_by_default(self, tiny_data, tiny_config):
        model = MUSENet(tiny_config)
        history = Trainer(model, TrainConfig(epochs=1, lr=1e-3)).fit(tiny_data)
        assert history.op_profile is None
        assert history.peak_tape_bytes == 0

    def test_evaluate_returns_report(self, tiny_data, tiny_config):
        model = MUSENet(tiny_config)
        trainer = Trainer(model, TrainConfig(epochs=1, lr=1e-3))
        trainer.fit(tiny_data)
        report = trainer.evaluate(tiny_data)
        assert np.isfinite(report.outflow_rmse)

    def test_predictions_in_flow_units(self, tiny_data, tiny_config):
        model = MUSENet(tiny_config)
        trainer = Trainer(model, TrainConfig(epochs=2, lr=1e-3))
        trainer.fit(tiny_data)
        flows = trainer.predict_flows(tiny_data, tiny_data.test)
        # Flow units are non-negative-ish counts; scaled units live in
        # [-1, 1].  A trained model must leave the scaled range.
        assert flows.max() > 1.5

    def test_chunked_prediction_matches_single(self, tiny_data, tiny_config):
        model = MUSENet(tiny_config)
        small_chunks = Trainer(model, TrainConfig(eval_batch_size=3))
        big_chunks = Trainer(model, TrainConfig(eval_batch_size=1000))
        np.testing.assert_allclose(
            small_chunks.predict_scaled(tiny_data.test),
            big_chunks.predict_scaled(tiny_data.test),
        )

    def test_predict_scaled_empty_batch(self, tiny_data, tiny_config):
        # Seed regression: an empty batch crashed in np.concatenate
        # ("need at least one array to concatenate") instead of
        # returning the well-defined empty answer.
        model = MUSENet(tiny_config)
        trainer = Trainer(model, TrainConfig(eval_batch_size=4))
        empty = tiny_data.test.slice(0, 0)
        prediction = trainer.predict_scaled(empty)
        assert prediction.shape == (0,) + tiny_data.test.target.shape[1:]
        assert prediction.dtype == tiny_data.test.target.dtype

    def test_predict_scaled_tail_smaller_than_chunk(self, tiny_data,
                                                    tiny_config):
        # Odd tails at every relative size: N < chunk, N == chunk, and
        # N % chunk != 0 must all equal the one-shot forward row-for-row.
        model = MUSENet(tiny_config)
        reference = Trainer(
            model, TrainConfig(eval_batch_size=1000)).predict_scaled(
            tiny_data.test)
        for n, size in ((2, 5), (5, 5), (7, 5)):
            batch = tiny_data.test.slice(0, n)
            got = Trainer(model,
                          TrainConfig(eval_batch_size=size)).predict_scaled(
                batch)
            np.testing.assert_allclose(got, reference[:n])

    def test_batch_size_validation(self):
        with pytest.raises(ValueError, match="batch_size"):
            TrainConfig(batch_size=0)
        with pytest.raises(ValueError, match="eval_batch_size"):
            TrainConfig(eval_batch_size=0)
