"""Tests for MUSE-Net building blocks."""

import numpy as np
import pytest

from repro.core import (
    DuplexEncoder,
    ExclusiveEncoder,
    GaussianHead,
    InteractiveEncoder,
    ReconstructionDecoder,
    ResPlusBlock,
    ResPlusNetwork,
    SeriesStem,
    SimplexEncoder,
    reparameterize,
)
from repro.tensor import Tensor

RNG = np.random.default_rng(5)
H, W, D = 4, 5, 6
CELLS = H * W


def rand(*shape):
    return Tensor(RNG.standard_normal(shape))


class TestGaussianHead:
    def test_output_shapes(self):
        head = GaussianHead(CELLS * D, 8, rng=np.random.default_rng(0))
        posterior = head(rand(3, D, H, W))
        assert posterior.mu.shape == (3, 8)
        assert posterior.logvar.shape == (3, 8)
        assert posterior.dim == 8

    def test_logvar_bounded(self):
        head = GaussianHead(CELLS * D, 8, rng=np.random.default_rng(0))
        posterior = head(rand(3, D, H, W) * 1000)
        assert np.all(np.abs(posterior.logvar.data) <= GaussianHead.LOGVAR_BOUND)

    def test_detach_cuts_gradients(self):
        head = GaussianHead(CELLS * D, 8, rng=np.random.default_rng(0))
        posterior = head(rand(2, D, H, W))
        frozen = posterior.detach()
        assert not frozen.mu.requires_grad
        assert posterior.mu.requires_grad or not posterior.mu.requires_grad  # no error


class TestReparameterize:
    def test_zero_variance_returns_mean(self):
        mu = rand(4, 8)
        logvar = Tensor(np.full((4, 8), -80.0))
        z = reparameterize(mu, logvar, np.random.default_rng(0))
        np.testing.assert_allclose(z.data, mu.data, atol=1e-10)

    def test_statistics(self):
        mu = Tensor(np.full((4000, 2), 3.0))
        logvar = Tensor(np.zeros((4000, 2)))
        z = reparameterize(mu, logvar, np.random.default_rng(0))
        assert abs(z.data.mean() - 3.0) < 0.05
        assert abs(z.data.std() - 1.0) < 0.05

    def test_gradient_flows_to_mu_and_logvar(self):
        mu = Tensor(np.zeros((2, 3)), requires_grad=True)
        logvar = Tensor(np.zeros((2, 3)), requires_grad=True)
        z = reparameterize(mu, logvar, np.random.default_rng(1))
        (z * z).sum().backward()
        assert mu.grad is not None
        assert logvar.grad is not None

    def test_sample_through_posterior(self):
        head = GaussianHead(CELLS * D, 8, rng=np.random.default_rng(0))
        posterior = head(rand(3, D, H, W))
        z = posterior.sample(np.random.default_rng(0))
        assert z.shape == (3, 8)


class TestEncoders:
    def test_stem_shape(self):
        stem = SeriesStem(6, D, rng=np.random.default_rng(0))
        assert stem(rand(2, 6, H, W)).shape == (2, D, H, W)

    def test_exclusive_encoder(self):
        enc = ExclusiveEncoder(D, CELLS, 8, rng=np.random.default_rng(0))
        rep, posterior = enc(rand(2, D, H, W))
        assert rep.shape == (2, D, H, W)
        assert posterior.mu.shape == (2, 8)

    def test_interactive_encoder(self):
        enc = InteractiveEncoder(D, CELLS, 16, rng=np.random.default_rng(0))
        rep, posterior = enc(rand(2, D, H, W), rand(2, D, H, W), rand(2, D, H, W))
        assert rep.shape == (2, D, H, W)
        assert posterior.mu.shape == (2, 16)

    def test_simplex_and_duplex(self):
        simplex = SimplexEncoder(D, CELLS, 16, rng=np.random.default_rng(0))
        duplex = DuplexEncoder(D, CELLS, 16, rng=np.random.default_rng(0))
        assert simplex(rand(2, D, H, W)).mu.shape == (2, 16)
        assert duplex(rand(2, D, H, W), rand(2, D, H, W)).mu.shape == (2, 16)


class TestDecoder:
    def test_output_shape(self):
        dec = ReconstructionDecoder(8, 16, (6, H, W), hidden_dim=32,
                                    rng=np.random.default_rng(0))
        out = dec(rand(3, 8), rand(3, 16))
        assert out.shape == (3, 6, H, W)

    def test_output_in_tanh_range(self):
        dec = ReconstructionDecoder(8, 16, (6, H, W), hidden_dim=32,
                                    rng=np.random.default_rng(0))
        out = dec(rand(3, 8) * 100, rand(3, 16) * 100)
        assert np.all(np.abs(out.data) <= 1.0)


class TestResPlus:
    def test_block_preserves_shape(self):
        block = ResPlusBlock(D, 2, H, W, rng=np.random.default_rng(0))
        assert block(rand(2, D, H, W)).shape == (2, D, H, W)

    def test_block_invalid_plus_channels(self):
        with pytest.raises(ValueError):
            ResPlusBlock(D, D, H, W)
        with pytest.raises(ValueError):
            ResPlusBlock(D, 0, H, W)

    def test_block_is_residual(self):
        # Zeroing the branch weights makes the block the identity.
        block = ResPlusBlock(D, 2, H, W, rng=np.random.default_rng(0))
        block.conv.weight.data[...] = 0.0
        block.conv.bias.data[...] = 0.0
        block.plus.weight.data[...] = 0.0
        block.plus.bias.data[...] = 0.0
        x = rand(2, D, H, W)
        np.testing.assert_allclose(block(x).data, x.data)

    def test_plus_branch_reaches_far_cells(self):
        # Long-range test: perturbing one corner must change the output
        # at the opposite corner through the plus branch (a 3x3 conv
        # stack of depth 1 cannot do that on a 4x5 grid).
        block = ResPlusBlock(D, 2, H, W, rng=np.random.default_rng(0))
        x = RNG.standard_normal((1, D, H, W))
        base = block(Tensor(x)).data
        x2 = x.copy()
        x2[0, 0, 0, 0] += 1.0
        bumped = block(Tensor(x2)).data
        far_change = np.abs(bumped[0, -2:, H - 1, W - 1] - base[0, -2:, H - 1, W - 1])
        assert far_change.max() > 0

    def test_network_output(self):
        net = ResPlusNetwork(4 * D, D, H, W, num_blocks=2, plus_channels=2,
                             rng=np.random.default_rng(0))
        out = net(rand(2, 4 * D, H, W))
        assert out.shape == (2, 2, H, W)
        assert np.all(np.abs(out.data) <= 1.0)  # tanh output

    def test_plus_reduce_shrinks_parameters(self):
        flat = ResPlusBlock(D, 2, H, W, rng=np.random.default_rng(0))
        reduced = ResPlusBlock(D, 2, H, W, rng=np.random.default_rng(0),
                               plus_reduce=2)
        assert reduced.num_parameters() < flat.num_parameters()
        # Shapes are unchanged.
        x = rand(2, D, H, W)
        assert reduced(x).shape == flat(x).shape

    def test_plus_reduce_invalid(self):
        with pytest.raises(ValueError):
            ResPlusBlock(D, 2, H, W, plus_reduce=0)

    def test_plus_reduce_gradcheck(self):
        from repro.tensor import check_gradients

        block = ResPlusBlock(D, 2, H, W, rng=np.random.default_rng(0),
                             plus_reduce=2)
        check_gradients(lambda t: block(t[0]).tanh().sum(), [rand(1, D, H, W)])
