"""Tests for conformal intervals and ensembles."""

import numpy as np
import pytest

from repro.core import MUSENet
from repro.training import (
    ConformalForecaster,
    TrainConfig,
    Trainer,
    ensemble_predict,
    interval_coverage,
)


@pytest.fixture(scope="module")
def fitted(tiny_data, tiny_config):
    model = MUSENet(tiny_config)
    trainer = Trainer(model, TrainConfig(epochs=4, lr=2e-3, seed=0))
    trainer.fit(tiny_data)
    return trainer


class TestConformal:
    def test_quantile_monotone_in_alpha(self, fitted, tiny_data):
        conformal = ConformalForecaster(fitted, tiny_data)
        assert conformal.quantile(0.05) >= conformal.quantile(0.5)

    def test_invalid_alpha(self, fitted, tiny_data):
        conformal = ConformalForecaster(fitted, tiny_data)
        with pytest.raises(ValueError):
            conformal.quantile(0.0)
        with pytest.raises(ValueError):
            conformal.quantile(1.0)

    def test_intervals_contain_prediction(self, fitted, tiny_data):
        conformal = ConformalForecaster(fitted, tiny_data)
        intervals = conformal.predict_intervals(tiny_data.test, alpha=0.1)
        assert np.all(intervals.lower <= intervals.prediction)
        assert np.all(intervals.prediction <= intervals.upper)

    def test_coverage_near_nominal(self, fitted, tiny_data):
        conformal = ConformalForecaster(fitted, tiny_data)
        intervals = conformal.predict_intervals(tiny_data.test, alpha=0.2)
        truth = tiny_data.inverse(tiny_data.test.target)
        coverage = interval_coverage(intervals, truth)
        # Marginal guarantee is >= 1 - alpha under exchangeability; the
        # test tail shifts a bit, so allow slack below nominal.
        assert coverage > 0.6

    def test_smaller_alpha_wider_intervals(self, fitted, tiny_data):
        conformal = ConformalForecaster(fitted, tiny_data)
        tight = conformal.predict_intervals(tiny_data.test, alpha=0.5)
        wide = conformal.predict_intervals(tiny_data.test, alpha=0.05)
        tight_width = (tight.upper - tight.lower).mean()
        wide_width = (wide.upper - wide.lower).mean()
        assert wide_width >= tight_width


class TestEnsemble:
    def test_mean_and_std_shapes(self, tiny_data, tiny_config):
        from dataclasses import replace

        models = [MUSENet(replace(tiny_config, seed=s)) for s in (0, 1, 2)]
        mean, std = ensemble_predict(models, tiny_data.test)
        assert mean.shape == tiny_data.test.target.shape
        assert std.shape == mean.shape
        assert np.all(std >= 0)
        assert std.max() > 0  # different seeds disagree somewhere

    def test_single_model_raises(self, tiny_data, tiny_config):
        with pytest.raises(ValueError):
            ensemble_predict([MUSENet(tiny_config)], tiny_data.test)
