"""Tests for recursive multi-step rollout."""

import numpy as np
import pytest

from repro.core import MUSENet
from repro.data.windows import SampleBatch
from repro.training import (
    TrainConfig,
    Trainer,
    direct_vs_recursive_rmse,
    recursive_forecast,
)


class _EchoModel:
    """Predicts the last closeness frame (persistence) — rollout of it
    must therefore keep emitting that same frame."""

    def predict(self, batch):
        return np.asarray(batch.closeness)[:, -1].copy()


class _IncrementModel:
    """Predicts last frame + 1, making the rollout arithmetic visible."""

    def predict(self, batch):
        return np.asarray(batch.closeness)[:, -1] + 1.0


def toy_batch(n=3, lc=2, h=2, w=2):
    rng = np.random.default_rng(0)
    return SampleBatch(
        closeness=rng.uniform(0, 1, (n, lc, 2, h, w)),
        period=rng.uniform(0, 1, (n, 1, 2, h, w)),
        trend=rng.uniform(0, 1, (n, 1, 2, h, w)),
        target=rng.uniform(0, 1, (n, 2, h, w)),
        indices=np.arange(n) + 100,
    )


class TestRecursiveForecast:
    def test_shapes(self):
        batch = toy_batch()
        out = recursive_forecast(_EchoModel(), batch, horizons=3)
        assert out.shape == (3, 3, 2, 2, 2)

    def test_persistence_rollout_is_constant(self):
        batch = toy_batch()
        out = recursive_forecast(_EchoModel(), batch, horizons=3)
        np.testing.assert_allclose(out[0], out[1])
        np.testing.assert_allclose(out[0], out[2])
        np.testing.assert_allclose(out[0], batch.closeness[:, -1])

    def test_predictions_feed_back(self):
        batch = toy_batch()
        out = recursive_forecast(_IncrementModel(), batch, horizons=3)
        np.testing.assert_allclose(out[1], out[0] + 1.0)
        np.testing.assert_allclose(out[2], out[0] + 2.0)

    def test_input_batch_not_mutated(self):
        batch = toy_batch()
        before = batch.closeness.copy()
        recursive_forecast(_IncrementModel(), batch, horizons=2)
        np.testing.assert_allclose(batch.closeness, before)

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            recursive_forecast(_EchoModel(), toy_batch(), horizons=0)

    def test_with_trained_musenet(self, tiny_data, tiny_config):
        model = MUSENet(tiny_config)
        trainer = Trainer(model, TrainConfig(epochs=3, lr=2e-3))
        trainer.fit(tiny_data)
        out = recursive_forecast(model, tiny_data.test, horizons=2)
        assert out.shape[0] == 2
        assert np.all(np.abs(out) <= 1.0)  # stays in tanh range


class TestComparisonTable:
    def test_rows(self):
        truths = np.zeros((2, 3, 2, 2, 2))
        recursive = np.ones_like(truths)
        direct = np.ones_like(truths) * 2.0
        rows = direct_vs_recursive_rmse(recursive, direct, truths)
        assert rows == [(1, 1.0, 2.0), (2, 1.0, 2.0)]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            direct_vs_recursive_rmse(np.zeros((1, 2, 2, 2, 2)),
                                     np.zeros((2, 2, 2, 2, 2)),
                                     np.zeros((2, 2, 2, 2, 2)))
