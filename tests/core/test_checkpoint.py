"""Tests for training checkpoints."""

import numpy as np
import pytest

from repro.core import MUSENet
from repro.nn import Linear, Parameter, Sequential, ReLU
from repro.optim import Adam
from repro.tensor import Tensor
from repro.training import History, load_checkpoint, save_checkpoint
from repro.training.checkpoint import _CHECKSUM_KEY, _payload_digest


def rewrite_archive(path, mutate):
    """Tamper with an archive *semantically*: edit entries, fix checksum.

    ``mutate`` receives and returns the ``{key: array}`` dict.  The
    payload checksum is recomputed so the rewritten file passes
    integrity verification and exercises the loader's semantic checks
    (byte-level corruption is covered in tests/robustness/).
    """
    with np.load(path) as archive:
        data = {key: archive[key] for key in archive.files}
    data = mutate(data)
    data[_CHECKSUM_KEY] = np.array(_payload_digest(data))
    np.savez(path, **data)


def small_model():
    rng = np.random.default_rng(0)
    return Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))


def take_steps(model, optimizer, steps, seed=0):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal((16, 4)))
    y = Tensor(rng.standard_normal((16, 2)))
    for _ in range(steps):
        optimizer.zero_grad()
        diff = model(x) - y
        (diff * diff).mean().backward()
        optimizer.step()
    return x, y


class TestRoundTrip:
    def test_weights_restored(self, tmp_path):
        model = small_model()
        optimizer = Adam(model.parameters(), lr=1e-2)
        take_steps(model, optimizer, 5)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, optimizer, epoch=5)

        fresh = small_model()
        fresh_opt = Adam(fresh.parameters(), lr=1e-2)
        history, epoch = load_checkpoint(path, fresh, fresh_opt)
        assert epoch == 5
        assert history is None
        for a, b in zip(model.parameters(), fresh.parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_optimizer_moments_restored(self, tmp_path):
        model = small_model()
        optimizer = Adam(model.parameters(), lr=1e-2)
        take_steps(model, optimizer, 5)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, optimizer)

        fresh = small_model()
        fresh_opt = Adam(fresh.parameters(), lr=1e-2)
        load_checkpoint(path, fresh, fresh_opt)
        assert fresh_opt._step_count == optimizer._step_count
        for orig, restored in zip(optimizer._state, fresh_opt._state):
            assert set(orig) == set(restored)
            np.testing.assert_allclose(orig["m"], restored["m"])
            assert orig["t"] == restored["t"]

    def test_resume_matches_uninterrupted_run(self, tmp_path):
        # Train 10 steps straight vs 5 + checkpoint + resume + 5.
        straight = small_model()
        opt_straight = Adam(straight.parameters(), lr=1e-2)
        take_steps(straight, opt_straight, 10)

        first = small_model()
        opt_first = Adam(first.parameters(), lr=1e-2)
        take_steps(first, opt_first, 5)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, first, opt_first)

        resumed = small_model()
        opt_resumed = Adam(resumed.parameters(), lr=1e-2)
        load_checkpoint(path, resumed, opt_resumed)
        take_steps(resumed, opt_resumed, 5)

        for a, b in zip(straight.parameters(), resumed.parameters()):
            np.testing.assert_allclose(a.data, b.data, rtol=1e-10)

    def test_history_round_trip(self, tmp_path):
        model = small_model()
        optimizer = Adam(model.parameters(), lr=1e-2)
        history = History()
        history.record(1.0, 0.5, 2.0)
        history.record(0.8, 0.4, 1.5)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, optimizer, history=history, epoch=2)
        restored, epoch = load_checkpoint(path, model, optimizer)
        assert epoch == 2
        assert restored.val_rmse == [2.0, 1.5]
        assert restored.best_val_rmse == 1.5
        assert restored.best_epoch == 1

    def test_stopped_early_round_trip(self, tmp_path):
        # Regression: stopped_early was dropped on restore, so a resumed
        # run could not tell that early stopping had already triggered.
        model = small_model()
        optimizer = Adam(model.parameters(), lr=1e-2)
        history = History()
        history.record(1.0, 0.5, 2.0)
        history.stopped_early = True
        history.record_telemetry(1.5, 12.0)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, optimizer, history=history)
        restored, _epoch = load_checkpoint(path, model, optimizer)
        assert restored.stopped_early is True
        assert restored.epoch_time == [1.5]
        assert restored.batches_per_sec == [12.0]

    def test_optimizer_param_count_mismatch_raises(self, tmp_path):
        # Regression: an archive covering fewer parameters than the
        # optimizer tracks silently installed empty state dicts,
        # resetting Adam moments on resume.
        model = small_model()
        optimizer = Adam(model.parameters(), lr=1e-2)
        take_steps(model, optimizer, 3)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, optimizer)

        from repro.nn import Parameter

        extra = Parameter(np.zeros(3))
        bigger_opt = Adam(list(model.parameters()) + [extra], lr=1e-2)
        with pytest.raises(ValueError, match="parameter"):
            load_checkpoint(path, model, bigger_opt)

    def test_stepped_archive_without_opt_state_raises(self, tmp_path):
        # A legacy-style archive (no opt/num_states) whose opt/ entries
        # are missing entirely must not silently reset the moments.
        model = small_model()
        optimizer = Adam(model.parameters(), lr=1e-2)
        take_steps(model, optimizer, 3)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, optimizer)
        rewrite_archive(path, lambda data: {
            key: value for key, value in data.items()
            if not key.startswith("opt/")
        })
        with pytest.raises(ValueError, match="optimizer state"):
            load_checkpoint(path, model, optimizer)

    def test_version_mismatch(self, tmp_path):
        model = small_model()
        optimizer = Adam(model.parameters(), lr=1e-2)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, optimizer)

        def bump(data):
            data["format_version"] = np.array(42)
            return data

        rewrite_archive(path, bump)
        with pytest.raises(ValueError):
            load_checkpoint(path, model, optimizer)

    def test_suffixless_path_round_trip(self, tmp_path):
        # Regression: np.savez_compressed("ckpt") silently writes
        # "ckpt.npz" but load_checkpoint("ckpt") then failed to find it.
        model = small_model()
        optimizer = Adam(model.parameters(), lr=1e-2)
        take_steps(model, optimizer, 2)
        written = save_checkpoint(tmp_path / "ckpt", model, optimizer, epoch=2)
        assert str(written).endswith("ckpt.npz")
        assert (tmp_path / "ckpt.npz").exists()

        fresh = small_model()
        fresh_opt = Adam(fresh.parameters(), lr=1e-2)
        _history, epoch = load_checkpoint(tmp_path / "ckpt", fresh, fresh_opt)
        assert epoch == 2
        for a, b in zip(model.parameters(), fresh.parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_missing_file_message_names_path(self, tmp_path):
        model = small_model()
        optimizer = Adam(model.parameters(), lr=1e-2)
        with pytest.raises(FileNotFoundError, match="nothing-here"):
            load_checkpoint(tmp_path / "nothing-here", model, optimizer)

    def test_state_dict_isolated_from_inplace_updates(self):
        # The trainer keeps `best_state = model.state_dict()` across
        # later epochs; the in-place optimizer kernels (`out=` ufuncs)
        # must not be able to mutate that snapshot through aliasing.
        model = small_model()
        optimizer = Adam(model.parameters(), lr=1e-1)
        snapshot = model.state_dict()
        before = {name: value.copy() for name, value in snapshot.items()}
        take_steps(model, optimizer, 5)
        for name, value in snapshot.items():
            np.testing.assert_array_equal(value, before[name])
        # And the live parameters really did move.
        after = model.state_dict()
        assert any(not np.array_equal(after[name], before[name])
                   for name in before)

    def test_works_with_musenet(self, tmp_path, tiny_data, tiny_config):
        model = MUSENet(tiny_config)
        optimizer = Adam(model.parameters(), lr=1e-3)
        breakdown, _ = model.training_loss(tiny_data.train.take(range(4)),
                                           rng=np.random.default_rng(0))
        breakdown.total.backward()
        optimizer.step()
        path = tmp_path / "muse.npz"
        save_checkpoint(path, model, optimizer)

        fresh = MUSENet(tiny_config)
        fresh_opt = Adam(fresh.parameters(), lr=1e-3)
        load_checkpoint(path, fresh, fresh_opt)
        np.testing.assert_allclose(fresh.predict(tiny_data.test),
                                   model.predict(tiny_data.test))
