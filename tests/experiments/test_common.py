"""Tests for the experiment infrastructure (profiles, tables, prep)."""

import numpy as np
import pytest

from repro.experiments import (
    PROFILES,
    Profile,
    format_table,
    get_profile,
    muse_config,
    prepare,
)


class TestProfiles:
    def test_three_profiles_exist(self):
        assert set(PROFILES) == {"ci", "paper", "full"}

    def test_get_profile_by_name(self):
        assert get_profile("ci").name == "ci"

    def test_get_profile_passthrough(self):
        custom = Profile(name="mine", dataset_scale="tiny", epochs=1)
        assert get_profile(custom) is custom

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError):
            get_profile("gpu")

    def test_full_profile_matches_paper(self):
        full = get_profile("full")
        assert full.epochs == 350
        assert full.lr == 2e-4
        assert full.batch_size == 8
        assert full.rep_channels == 64
        assert full.latent_interactive == 128
        assert full.gen_weight == 1.0  # the paper's objective, unrebalanced

    def test_profiles_are_increasingly_expensive(self):
        assert PROFILES["ci"].epochs < PROFILES["paper"].epochs < PROFILES["full"].epochs


class TestPrepare:
    def test_prepare_ci_dataset(self):
        data = prepare("nyc-bike", "ci")
        assert len(data.train) > 0
        assert len(data.test) > 0

    def test_prepare_with_horizon(self):
        data = prepare("nyc-bike", "ci", horizon=2)
        assert data.horizon == 2

    def test_muse_config_inherits_profile(self):
        data = prepare("nyc-bike", "ci")
        config = muse_config(data, "ci")
        assert config.rep_channels == PROFILES["ci"].rep_channels
        assert config.gen_weight == PROFILES["ci"].gen_weight

    def test_muse_config_overrides(self):
        data = prepare("nyc-bike", "ci")
        config = muse_config(data, "ci", gen_weight=1.0, rep_channels=4)
        assert config.gen_weight == 1.0
        assert config.rep_channels == 4


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(("a", "bb"), [(1.5, "x"), (2.25, "y")])
        assert "a" in text and "bb" in text
        assert "1.50" in text and "2.25" in text

    def test_title(self):
        text = format_table(("a",), [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_precision(self):
        text = format_table(("a",), [(1.23456,)], precision=4)
        assert "1.2346" in text

    def test_empty_rows(self):
        text = format_table(("col",), [])
        assert "col" in text

    def test_alignment(self):
        text = format_table(("name", "v"), [("long-method-name", 1.0), ("x", 2.0)])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2])  # separator matches rows
