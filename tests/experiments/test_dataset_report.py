"""Tests for the dataset diagnostics report."""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.experiments import build_dataset_report


@pytest.fixture(scope="module")
def bike_report():
    return build_dataset_report("nyc-bike")


class TestReport:
    def test_accepts_name_or_dataset(self, bike_report):
        direct = build_dataset_report(load_dataset("nyc-bike", scale="tiny"))
        assert direct.daily_strength == bike_report.daily_strength

    def test_synthetic_traffic_passes_precondition(self, bike_report):
        assert bike_report.has_multiperiodic_structure()

    def test_daily_strength_high(self, bike_report):
        assert bike_report.daily_strength > 0.5

    def test_peak_ratio_above_one(self, bike_report):
        # Commuter cities are busier at rush hour.
        assert bike_report.peak_ratio > 1.5

    def test_weekend_quieter(self, bike_report):
        assert bike_report.weekend_ratio < 1.0

    def test_profile_length_matches_sampling(self, bike_report):
        dataset = load_dataset("nyc-bike", scale="tiny")
        assert len(bike_report.daily_profile) == dataset.grid.samples_per_day

    def test_str_contains_charts(self, bike_report):
        text = str(bike_report)
        assert "daily profile" in text
        assert "flow map" in text

    def test_noise_dataset_fails_precondition(self):
        from repro.data.datasets import TrafficDataset
        from repro.data import GridSpec, MultiPeriodicity

        grid = GridSpec(3, 3, interval_minutes=120)
        rng = np.random.default_rng(0)
        flows = rng.uniform(0, 5, size=(grid.intervals_for_days(14), 2, 3, 3))
        noise = TrafficDataset(
            name="noise", scale="custom", grid=grid, flows=flows,
            periodicity=MultiPeriodicity(2, 1, 1, samples_per_day=grid.samples_per_day),
        )
        report = build_dataset_report(noise)
        assert not report.has_multiperiodic_structure()
