"""Tests for experiment result objects (math, not training)."""

import numpy as np
import pytest

from repro.analysis import ComplexityEntry
from repro.experiments import (
    Fig4Result,
    Fig5Result,
    Fig6Result,
    Fig9Result,
    Table1Result,
    Table2Result,
    Table6Result,
)
from repro.metrics import EvalReport


def report(*values):
    return EvalReport(*values)


class TestTable2Result:
    def make(self):
        result = Table2Result(profile="test")
        result.reports["ds"] = {
            "Base-A": report(2.0, 1.0, 0.5, 2.0, 1.0, 0.5),
            "Base-B": report(4.0, 2.0, 0.8, 3.0, 1.5, 0.6),
            "MUSE-Net": report(1.0, 0.8, 0.4, 1.5, 0.9, 0.45),
        }
        return result

    def test_rows_in_paper_order(self):
        rows = self.make().rows("ds")
        assert rows[0][0] == "Base-A"
        assert rows[0][1:] == (2.0, 1.0, 0.5, 2.0, 1.0, 0.5)

    def test_improvement_formula(self):
        improvement = self.make().improvement("ds")
        # (best baseline - ours) / best baseline = (2 - 1) / 2
        assert improvement[0] == pytest.approx(0.5)

    def test_muse_wins(self):
        assert self.make().muse_wins("ds")

    def test_muse_loses_when_worse(self):
        result = self.make()
        result.reports["ds"]["MUSE-Net"] = report(9.0, 9, 9, 9, 9, 9)
        assert not result.muse_wins("ds")

    def test_str_contains_improvement_row(self):
        assert "Improvement" in str(self.make())


class TestTable6Result:
    def make(self, full_rmse=1.0):
        result = Table6Result(profile="test")
        result.reports["ds"] = {
            "full": report(full_rmse, 1, 1, 1, 1, 1),
            "w/o-Spatial": report(5.0, 1, 1, 5.0, 1, 1),
            "w/o-SemanticPushing": report(1.2, 1, 1, 1.2, 1, 1),
        }
        return result

    def test_full_model_best(self):
        assert self.make().full_model_best("ds")

    def test_full_model_not_best(self):
        assert not self.make(full_rmse=2.0).full_model_best("ds")

    def test_rows(self):
        rows = self.make().rows("ds")
        assert len(rows) == 3


class TestFigResults:
    def test_fig4_correlation_and_rmse(self):
        truth = np.array([1.0, 2.0, 3.0, 4.0])
        result = Fig4Result(profile="t", curves={
            "ds": {"ground-truth": truth, "m": truth * 2.0}
        })
        assert result.correlation("ds", "m") == pytest.approx(1.0)
        assert result.curve_rmse("ds", "m") > 0

    def test_fig5_separation_flag(self):
        result = Fig5Result(
            original_embedding=np.zeros((4, 2)), original_labels=np.zeros(4),
            disentangled_embedding=np.zeros((4, 2)),
            disentangled_labels=np.zeros(4),
            original_silhouette=0.1, disentangled_silhouette=0.8,
        )
        assert result.separation_improved
        assert "separates" in str(result)

    def test_fig6_fractions(self):
        matrix = np.array([[0.5, -0.5], [0.25, 0.75]])
        result = Fig6Result(matrices={"c": matrix, "p": matrix, "t": matrix},
                            centered_matrices={"c": matrix, "p": matrix, "t": matrix})
        assert result.positive_fraction("c") == 0.75
        assert result.mean_similarity("c") == pytest.approx(0.25)

    def test_fig9_best_value(self):
        result = Fig9Result(profile="t", curves={
            "lambda": [(0.1, 3.0, 0.0), (1.0, 1.0, 0.0), (10.0, 2.0, 0.0)]
        })
        assert result.best_value("lambda") == 1.0


class TestTable1Result:
    def test_str_renders_both_tables(self):
        entry = ComplexityEntry("M", "CNN", "O(n)", "O(n)", 1.0, 2.0)
        result = Table1Result(analytic=[entry], measured={"M": (100, 0.01)})
        text = str(result)
        assert "analytic" in text
        assert "Measured" in text
        assert "100" in text
