"""Tests for extension-ablation result objects (no training)."""

import numpy as np

from repro.experiments import (
    FusionAblationResult,
    GenWeightAblationResult,
    PullModeResult,
)


class TestFusionResult:
    def test_str_renders_rows(self):
        result = FusionAblationResult(profile="t",
                                      rmse={"resplus": (1.0, 1.1), "none": (2.0, 2.1)})
        text = str(result)
        assert "resplus" in text
        assert "2.10" in text


class TestGenWeightResult:
    def test_str(self):
        result = GenWeightAblationResult(profile="t", rmse={0.0: (1.0, 1.0)})
        assert "gen_weight" in str(result)


class TestPullModeResult:
    def make(self):
        return PullModeResult(steps=3, trajectories={
            "alternating": [100.0, 80.0, 60.0],
            "joint": [100.0, -5e6, -1e9],
        })

    def test_final(self):
        assert self.make().final("alternating") == 60.0

    def test_diverged_detects_runaway(self):
        result = self.make()
        assert result.diverged("joint")
        assert not result.diverged("alternating")

    def test_diverged_detects_nan(self):
        result = PullModeResult(steps=2, trajectories={"joint": [1.0, float("nan")]})
        assert result.diverged("joint")

    def test_str(self):
        assert "pull mode" in str(self.make())
