"""Integration tests for the cheap experiment runners.

The training-heavy runners are exercised (and shape-asserted) by the
benchmark suite; these are the ones fast enough for the unit-test run.
"""

import numpy as np

from repro.experiments import run_fig1, run_fig2, run_pull_mode_ablation, run_table1


class TestTable1:
    def test_runs_and_measures_all_methods(self):
        result = run_table1(profile="ci")
        assert {e.method for e in result.analytic} == \
            {"DeepSTN+", "DMSTGCN", "GMAN", "MUSE-Net"}
        assert set(result.measured) == {"DeepSTN+", "DMSTGCN", "GMAN", "MUSE-Net"}

    def test_musenet_params_largest(self):
        result = run_table1(profile="ci")
        params = {name: p for name, (p, _t) in result.measured.items()}
        assert params["MUSE-Net"] == max(params.values())

    def test_str_renders(self):
        assert "Table I" in str(run_table1(profile="ci"))


class TestFig1:
    def test_level_shift_detected(self):
        result = run_fig1(seed=0)
        assert result.level_shift_ks > 0.05
        assert result.level_shift_pvalue < 0.05

    def test_point_shift_is_outlier(self):
        result = run_fig1(seed=0)
        assert result.point_shift_zscore > 3.0

    def test_str_has_sparklines(self):
        text = str(run_fig1(seed=0))
        assert "level shift" in text
        assert "point shift" in text


class TestFig2:
    def test_correlation_traces_bounded(self):
        result = run_fig2(seed=0)
        for trace in result.correlations.values():
            assert np.all(np.abs(trace) <= 1.0 + 1e-9)

    def test_interaction_shifts(self):
        result = run_fig2(seed=0)
        assert result.dominant_switches() >= 1

    def test_all_three_subseries_present(self):
        assert set(run_fig2(seed=0).correlations) == {"c", "p", "t"}


class TestPullModeAblation:
    def test_joint_diverges_alternating_does_not(self):
        result = run_pull_mode_ablation(profile="ci", steps=15)
        assert result.diverged("joint")
        assert not result.diverged("alternating")
