"""Repo-wide pytest wiring: the runtime concurrency-sanitizer gate.

With ``REPRO_TSAN=1`` in the environment, :mod:`repro.inspect.sanitizer`
activates a process-wide session at import, every lock/thread the
serving and training stack creates through the ``create_*`` factories
is instrumented, and this fixture fails the pytest session if any
dynamic finding (lock-order inversion, fork-while-locked, unjoined
thread, long hold) accumulated across the suites.  CI runs the serve /
parallel / stream suites this way (``scripts/ci_check.sh``); add
``REPRO_TSAN_STRESS=1`` for seeded schedule perturbation.

Without the env flag this file is inert — the factories hand out bare
:mod:`threading` primitives and no fixture logic runs.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _repro_tsan_gate():
    if not os.environ.get("REPRO_TSAN"):
        yield
        return
    from repro.inspect import sanitizer

    session = sanitizer.ensure_env_session()
    yield
    findings = session.finalize()
    if findings:
        lines = "\n".join(f"  {f}" for f in findings)
        pytest.fail(
            f"concurrency sanitizer recorded {len(findings)} finding(s) "
            f"across this run:\n{lines}", pytrace=False)
