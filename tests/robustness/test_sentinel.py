"""Divergence-sentinel fault injection: every policy, end to end."""

import numpy as np
import pytest

from repro.training import DivergenceError, TrainConfig, Trainer
from repro.training.sentinel import DivergenceSentinel

from tests.robustness.injectors import FaultInjector, ToyForecaster


def make_trainer(tiny_data, model, **overrides):
    defaults = dict(epochs=3, batch_size=8, lr=1e-2, seed=0)
    defaults.update(overrides)
    return Trainer(model, TrainConfig(**defaults))


class TestRaisePolicy:
    def test_nan_loss_raises_before_weights_poisoned(self, tiny_data):
        model = FaultInjector(ToyForecaster(tiny_data),
                              nan_loss_steps={2})
        before = {name: value.copy()
                  for name, value in model.state_dict().items()}
        trainer = make_trainer(tiny_data, model, sentinel="raise")
        with pytest.raises(DivergenceError, match="nonfinite_loss"):
            trainer.fit(tiny_data)
        # The flagged update never reached the weights; every parameter
        # is still finite (steps 0-1 did run, so values may differ).
        for param in model.parameters():
            assert np.isfinite(param.data).all()
        assert model.state_dict().keys() == before.keys()

    def test_nan_grad_with_finite_loss_raises(self, tiny_data):
        model = FaultInjector(ToyForecaster(tiny_data),
                              nan_grad_steps={1})
        trainer = make_trainer(tiny_data, model, sentinel="raise")
        with pytest.raises(DivergenceError, match="nonfinite_grad"):
            trainer.fit(tiny_data)

    def test_error_carries_event(self, tiny_data):
        model = FaultInjector(ToyForecaster(tiny_data), nan_loss_steps={0})
        trainer = make_trainer(tiny_data, model, sentinel="raise")
        with pytest.raises(DivergenceError) as excinfo:
            trainer.fit(tiny_data)
        event = excinfo.value.event
        assert event.kind == "nonfinite_loss"
        assert event.step == 0
        assert event.action == "raise"


class TestSkipBatchPolicy:
    def test_run_completes_with_finite_weights(self, tiny_data):
        model = FaultInjector(ToyForecaster(tiny_data),
                              nan_loss_steps={1, 3})
        trainer = make_trainer(tiny_data, model, sentinel="skip_batch")
        history = trainer.fit(tiny_data)
        assert history.epochs_run == 3
        for param in model.parameters():
            assert np.isfinite(param.data).all()
        assert np.isfinite(history.train_loss).all()
        report = history.sentinel
        assert report["policy"] == "skip_batch"
        assert report["counts"] == {"nonfinite_loss": 2}
        assert [e["step"] for e in report["events"]] == [1, 3]

    def test_skipped_batch_takes_no_optimizer_step(self, tiny_data):
        model = FaultInjector(ToyForecaster(tiny_data), nan_loss_steps={0})
        trainer = make_trainer(tiny_data, model, sentinel="skip_batch",
                               epochs=1)
        trainer.fit(tiny_data)
        # 2 batches/epoch, one skipped -> exactly one optimizer step.
        assert trainer.optimizer._step_count == 1


class TestRollbackPolicy:
    def test_rollback_restores_weights_and_backs_off_lr(self, tiny_data):
        model = FaultInjector(ToyForecaster(tiny_data), nan_loss_steps={2})
        trainer = make_trainer(tiny_data, model, sentinel="rollback",
                               rollback_lr_factor=0.5)
        lr_before = trainer.optimizer.lr
        history = trainer.fit(tiny_data)
        assert history.epochs_run == 3
        assert trainer.optimizer.lr == pytest.approx(lr_before * 0.5)
        report = history.sentinel
        assert report["rollbacks"] == 1
        for param in model.parameters():
            assert np.isfinite(param.data).all()

    def test_rollback_budget_exhaustion_raises(self, tiny_data):
        # Every step is poisoned: the budget (2) must trip.
        model = FaultInjector(ToyForecaster(tiny_data),
                              nan_loss_steps=set(range(32)))
        trainer = make_trainer(tiny_data, model, sentinel="rollback",
                               max_rollbacks=2)
        with pytest.raises(DivergenceError, match="rollback"):
            trainer.fit(tiny_data)

    def test_rollback_restores_optimizer_moments(self, tiny_data):
        # After a clean epoch 0, epoch 1's first step diverges.  The
        # restore must bring back the snapshot's Adam step count.
        model = FaultInjector(ToyForecaster(tiny_data), nan_loss_steps={2})
        trainer = make_trainer(tiny_data, model, sentinel="rollback",
                               epochs=2)
        trainer.fit(tiny_data)
        # epoch 0: 2 steps; epoch 1: rollback to 2 steps, then 1 good step.
        assert trainer.optimizer._step_count == 3


class TestSpikeDetection:
    def test_exploding_gradient_flagged(self, tiny_data):
        model = FaultInjector(ToyForecaster(tiny_data),
                              scale_loss_steps={5: 1e9})
        trainer = make_trainer(tiny_data, model, sentinel="raise", epochs=6,
                               sentinel_warmup=2)
        with pytest.raises(DivergenceError, match="grad_spike"):
            trainer.fit(tiny_data)

    def test_spike_needs_warmup(self):
        sentinel = DivergenceSentinel(policy="raise", spike_factor=10.0,
                                      warmup=5)

        class FakeParam:
            def __init__(self, grad):
                self.grad = grad

        params = [FakeParam(np.ones(4))]
        # Before warmup, even a huge norm passes.
        big = [FakeParam(np.full(4, 1e12))]
        assert sentinel.check(1.0, big, step=0, epoch=0) is None

    def test_spike_ema_not_dragged_by_spikes(self):
        sentinel = DivergenceSentinel(policy="skip_batch", spike_factor=10.0,
                                      warmup=2)

        class FakeParam:
            def __init__(self, value):
                self.grad = np.full(4, value)

        for step in range(5):
            assert sentinel.check(1.0, [FakeParam(1.0)], step, 0) is None
        spike = [FakeParam(1e6)]
        assert sentinel.check(1.0, spike, 5, 0) is not None
        # The spike must not have raised the baseline: it fires again.
        assert sentinel.check(1.0, spike, 6, 0) is not None


class TestCleanRunNeutrality:
    def test_sentinel_on_is_bit_identical_to_off(self, tiny_data):
        weights = {}
        for policy in (None, "rollback"):
            model = ToyForecaster(tiny_data, seed=0)
            trainer = Trainer(model, TrainConfig(
                epochs=2, batch_size=8, lr=1e-2, seed=0, sentinel=policy))
            trainer.fit(tiny_data)
            weights[policy] = [p.data.copy() for p in model.parameters()]
        for a, b in zip(weights[None], weights["rollback"]):
            np.testing.assert_array_equal(a, b)

    def test_clean_run_reports_no_events(self, tiny_data):
        model = ToyForecaster(tiny_data)
        trainer = make_trainer(tiny_data, model, sentinel="raise")
        history = trainer.fit(tiny_data)
        assert history.sentinel["counts"] == {}
        assert history.sentinel["events"] == []


class TestConfigValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="sentinel"):
            TrainConfig(sentinel="explode")

    def test_off_aliases_to_none(self):
        assert TrainConfig(sentinel="off").sentinel is None

    def test_checkpoint_every_requires_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            TrainConfig(checkpoint_every=2)

    def test_resume_requires_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            TrainConfig(resume=True)

    def test_bad_checkpoint_every_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            TrainConfig(checkpoint_every=0, checkpoint_dir="x")


class _Param:
    def __init__(self, value):
        self.grad = np.full(4, float(value))


class TestEmaColdStart:
    """The spike baseline's seeding semantics (PR 8 edge cases)."""

    def test_first_healthy_step_seeds_ema_with_its_own_norm(self):
        sentinel = DivergenceSentinel(policy="raise", spike_factor=10.0,
                                      warmup=2)
        assert sentinel.check(1.0, [_Param(3.0)], step=0, epoch=0) is None
        # EMA == first norm exactly, not beta-decayed toward zero.
        assert sentinel._norm_ema == pytest.approx(sentinel.last_norm)

    def test_warmup_spike_does_not_poison_the_baseline(self):
        # A huge norm during warmup is folded as "healthy" (nothing to
        # compare against yet), but the EMA then tracks later normal
        # steps instead of staying pinned at the outlier.
        sentinel = DivergenceSentinel(policy="raise", spike_factor=10.0,
                                      warmup=1)
        assert sentinel.check(1.0, [_Param(1e6)], 0, 0) is None
        seeded = sentinel._norm_ema
        for step in range(1, 90):
            result = sentinel.check(1.0, [_Param(1.0)], step, 0)
            if result is not None:
                pytest.fail(f"normal step flagged after warmup outlier: "
                            f"{result.detail}")
        assert sentinel._norm_ema < seeded * 1e-2

    def test_zero_norm_baseline_never_divides_or_fires(self):
        # All-zero gradients keep the EMA at 0; the spike check must
        # stay quiet (guarded by _norm_ema > 0) rather than flag the
        # first real gradient as infinitely spiky.
        sentinel = DivergenceSentinel(policy="raise", spike_factor=10.0,
                                      warmup=2)
        for step in range(4):
            assert sentinel.check(1.0, [_Param(0.0)], step, 0) is None
        assert sentinel.check(1.0, [_Param(5.0)], 4, 0) is None


class TestRearm:
    """rearm() must behave exactly like step zero of a fresh run."""

    def _warmed(self, warmup=3):
        sentinel = DivergenceSentinel(policy="raise", spike_factor=10.0,
                                      warmup=warmup)
        for step in range(warmup + 1):
            assert sentinel.check(1.0, [_Param(1.0)], step, 0) is None
        return sentinel

    def test_rearm_resets_baseline_and_reenters_warmup(self):
        sentinel = self._warmed()
        # Armed: a 100x norm fires against the ~1.0 baseline.
        assert sentinel.check(1.0, [_Param(100.0)], 9, 0) is not None
        sentinel.rearm()
        assert sentinel._norm_ema == 0.0
        assert sentinel.last_norm is None
        # The same norm now passes: warmup restarted, no baseline.
        assert sentinel.check(1.0, [_Param(100.0)], 10, 0) is None

    def test_rearm_reseeds_ema_from_post_rollback_norms(self):
        # After rollback + lr backoff the healthy norm scale changes;
        # the re-seeded EMA must describe the new scale, so the new
        # normal is not flagged against the old baseline.
        sentinel = self._warmed()
        sentinel.rearm()
        for step in range(4):
            assert sentinel.check(1.0, [_Param(50.0)], step, 1) is None
        assert sentinel.check(1.0, [_Param(60.0)], 4, 1) is None
        # ...but a genuine spike against the *new* baseline still fires.
        assert sentinel.check(1.0, [_Param(5e4)], 5, 1) is not None

    def test_rearm_keeps_nonfinite_detection_and_history(self):
        sentinel = self._warmed()
        assert sentinel.check(1.0, [_Param(100.0)], 9, 0) is not None
        events_before = len(sentinel.events)
        sentinel.rearm()
        # Event history and counts survive; only the baseline resets.
        assert len(sentinel.events) == events_before
        assert sentinel.counts.get("grad_spike", 0) >= 1
        assert sentinel.check(float("nan"), [_Param(1.0)], 10, 0).kind == \
            "nonfinite_loss"
