"""detect_anomaly() pinpoints the exact op that introduced a NaN/Inf."""

import numpy as np
import pytest

from repro.tensor import (
    AnomalyError,
    Tensor,
    detect_anomaly,
    is_anomaly_enabled,
)
from repro.training import TrainConfig, Trainer

from tests.robustness.injectors import FaultInjector, ToyForecaster


class TestForwardDetection:
    def test_log_of_negative_names_log(self):
        x = Tensor(np.array([1.0, -1.0]))
        with detect_anomaly(), pytest.raises(AnomalyError) as excinfo:
            with np.errstate(invalid="ignore"):
                x.log()
        assert excinfo.value.op == "log"
        assert excinfo.value.phase == "forward"
        assert "this op is the origin" in str(excinfo.value)

    def test_tainted_input_is_attributed_to_the_input(self):
        # The NaN pre-dates the op: the message must say so instead of
        # blaming the op's arithmetic.
        x = Tensor(np.array([float("nan"), 1.0]))
        with detect_anomaly(), pytest.raises(AnomalyError) as excinfo:
            x * 2.0
        assert excinfo.value.op == "mul"
        assert "entered through this op's input" in str(excinfo.value)

    def test_message_carries_shapes_and_census(self):
        x = Tensor(np.full((2, 3), -1.0))
        with detect_anomaly(), pytest.raises(AnomalyError) as excinfo:
            with np.errstate(invalid="ignore"):
                x.log()
        message = str(excinfo.value)
        assert "shape=(2, 3)" in message
        assert "6 NaN" in message


class TestBackwardDetection:
    def test_sqrt_at_zero_names_sqrt_backward(self):
        # Forward sqrt(0) = 0 is finite; the backward 0.5/0 is not.
        x = Tensor(np.array([0.0, 4.0]), requires_grad=True)
        with detect_anomaly():
            loss = x.sqrt().sum()
            with pytest.raises(AnomalyError) as excinfo, \
                    np.errstate(divide="ignore"):
                loss.backward()
        assert excinfo.value.op == "sqrt"
        assert excinfo.value.phase == "backward"
        assert "deposited a non-finite gradient" in str(excinfo.value)


class TestModeScoping:
    def test_off_by_default_and_restored_on_exit(self):
        assert not is_anomaly_enabled()
        with detect_anomaly():
            assert is_anomaly_enabled()
            with detect_anomaly():
                assert is_anomaly_enabled()
            assert is_anomaly_enabled()
        assert not is_anomaly_enabled()

    def test_no_check_outside_the_context(self):
        x = Tensor(np.array([-1.0]))
        with np.errstate(invalid="ignore"):
            y = x.log()  # silently NaN, as before this feature
        assert np.isnan(y.data).all()

    def test_restored_after_raise(self):
        x = Tensor(np.array([-1.0]))
        with pytest.raises(AnomalyError):
            with detect_anomaly(), np.errstate(invalid="ignore"):
                x.log()
        assert not is_anomaly_enabled()


class TestTrainerIntegration:
    def test_fit_under_detect_anomaly_names_the_poisoning_op(self, tiny_data):
        model = FaultInjector(ToyForecaster(tiny_data), nan_loss_steps={0})
        trainer = Trainer(model, TrainConfig(
            epochs=1, batch_size=8, seed=0, detect_anomaly=True))
        # The injector multiplies the loss by NaN: anomaly mode points
        # straight at that 'mul', not at a downstream symptom.
        with pytest.raises(AnomalyError) as excinfo:
            trainer.fit(tiny_data)
        assert excinfo.value.op == "mul"
        assert excinfo.value.phase == "forward"

    def test_clean_fit_under_detect_anomaly_passes(self, tiny_data):
        model = ToyForecaster(tiny_data)
        trainer = Trainer(model, TrainConfig(
            epochs=1, batch_size=8, seed=0, detect_anomaly=True))
        history = trainer.fit(tiny_data)
        assert history.epochs_run == 1


class TestNoStateLeakageOnRaise:
    """A raising anomaly hook must leave no tape or profiler state.

    Regression tests: the forward check used to run *after* the result
    joined the tape and the profiler's accounting, so a failed op
    leaked its output bytes forever; a mid-backward raise used to leave
    the tape alive, so retrying backward() silently double-deposited
    gradients.
    """

    def test_forward_raise_records_no_tape_bytes(self):
        from repro.profiling import profile

        x = Tensor(np.full(16, -1.0), requires_grad=True)
        with profile() as prof:
            with pytest.raises(AnomalyError), detect_anomaly(), \
                    np.errstate(invalid="ignore"):
                x.log()
            # The failed log's 16 float64 outputs (128 bytes) must not
            # stay on the books: nothing can ever free them.
            assert prof.tape_bytes == 0

    def test_backward_raise_frees_the_tape(self):
        from repro.profiling import profile

        x = Tensor(np.array([0.0, 4.0]), requires_grad=True)
        with profile() as prof:
            with detect_anomaly():
                loss = x.sqrt().sum()
                assert prof.tape_bytes > 0
                # sqrt'(0) = inf: the backward anomaly check raises
                # mid-walk, after some gradients have been deposited.
                with pytest.raises(AnomalyError), \
                        np.errstate(divide="ignore"):
                    loss.backward()
            assert prof.tape_bytes == 0

    def test_retry_after_backward_raise_is_an_explicit_error(self):
        # A partially-backpropagated graph has already deposited into
        # some nodes; a silent retry would double-count.  The tape is
        # freed in the raise path, so the retry fails loudly instead.
        x = Tensor(np.array([0.0, 4.0]), requires_grad=True)
        with detect_anomaly():
            loss = x.sqrt().sum()
            with pytest.raises(AnomalyError), np.errstate(divide="ignore"):
                loss.backward()
        with pytest.raises(RuntimeError, match="freed graph"):
            loss.backward()

    def test_retain_graph_survives_a_backward_raise(self):
        # retain_graph=True opts out of the free — the caller asked to
        # keep the tape, raise or no raise.
        x = Tensor(np.array([0.0, 4.0]), requires_grad=True)
        with detect_anomaly():
            loss = x.sqrt().sum()
            with pytest.raises(AnomalyError), np.errstate(divide="ignore"):
                loss.backward(retain_graph=True)
        with np.errstate(divide="ignore"):
            loss.backward(retain_graph=True)  # still alive
