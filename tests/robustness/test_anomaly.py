"""detect_anomaly() pinpoints the exact op that introduced a NaN/Inf."""

import numpy as np
import pytest

from repro.tensor import (
    AnomalyError,
    Tensor,
    detect_anomaly,
    is_anomaly_enabled,
)
from repro.training import TrainConfig, Trainer

from tests.robustness.injectors import FaultInjector, ToyForecaster


class TestForwardDetection:
    def test_log_of_negative_names_log(self):
        x = Tensor(np.array([1.0, -1.0]))
        with detect_anomaly(), pytest.raises(AnomalyError) as excinfo:
            with np.errstate(invalid="ignore"):
                x.log()
        assert excinfo.value.op == "log"
        assert excinfo.value.phase == "forward"
        assert "this op is the origin" in str(excinfo.value)

    def test_tainted_input_is_attributed_to_the_input(self):
        # The NaN pre-dates the op: the message must say so instead of
        # blaming the op's arithmetic.
        x = Tensor(np.array([float("nan"), 1.0]))
        with detect_anomaly(), pytest.raises(AnomalyError) as excinfo:
            x * 2.0
        assert excinfo.value.op == "mul"
        assert "entered through this op's input" in str(excinfo.value)

    def test_message_carries_shapes_and_census(self):
        x = Tensor(np.full((2, 3), -1.0))
        with detect_anomaly(), pytest.raises(AnomalyError) as excinfo:
            with np.errstate(invalid="ignore"):
                x.log()
        message = str(excinfo.value)
        assert "shape=(2, 3)" in message
        assert "6 NaN" in message


class TestBackwardDetection:
    def test_sqrt_at_zero_names_sqrt_backward(self):
        # Forward sqrt(0) = 0 is finite; the backward 0.5/0 is not.
        x = Tensor(np.array([0.0, 4.0]), requires_grad=True)
        with detect_anomaly():
            loss = x.sqrt().sum()
            with pytest.raises(AnomalyError) as excinfo, \
                    np.errstate(divide="ignore"):
                loss.backward()
        assert excinfo.value.op == "sqrt"
        assert excinfo.value.phase == "backward"
        assert "deposited a non-finite gradient" in str(excinfo.value)


class TestModeScoping:
    def test_off_by_default_and_restored_on_exit(self):
        assert not is_anomaly_enabled()
        with detect_anomaly():
            assert is_anomaly_enabled()
            with detect_anomaly():
                assert is_anomaly_enabled()
            assert is_anomaly_enabled()
        assert not is_anomaly_enabled()

    def test_no_check_outside_the_context(self):
        x = Tensor(np.array([-1.0]))
        with np.errstate(invalid="ignore"):
            y = x.log()  # silently NaN, as before this feature
        assert np.isnan(y.data).all()

    def test_restored_after_raise(self):
        x = Tensor(np.array([-1.0]))
        with pytest.raises(AnomalyError):
            with detect_anomaly(), np.errstate(invalid="ignore"):
                x.log()
        assert not is_anomaly_enabled()


class TestTrainerIntegration:
    def test_fit_under_detect_anomaly_names_the_poisoning_op(self, tiny_data):
        model = FaultInjector(ToyForecaster(tiny_data), nan_loss_steps={0})
        trainer = Trainer(model, TrainConfig(
            epochs=1, batch_size=8, seed=0, detect_anomaly=True))
        # The injector multiplies the loss by NaN: anomaly mode points
        # straight at that 'mul', not at a downstream symptom.
        with pytest.raises(AnomalyError) as excinfo:
            trainer.fit(tiny_data)
        assert excinfo.value.op == "mul"
        assert excinfo.value.phase == "forward"

    def test_clean_fit_under_detect_anomaly_passes(self, tiny_data):
        model = ToyForecaster(tiny_data)
        trainer = Trainer(model, TrainConfig(
            epochs=1, batch_size=8, seed=0, detect_anomaly=True))
        history = trainer.fit(tiny_data)
        assert history.epochs_run == 1
