"""Graceful interruption under data-parallel training (ISSUE 5).

SIGINT/SIGTERM during a parallel fit must finish the in-flight step,
drain the worker pool (zero child processes left), and write a valid
resumable ``ckpt-final.npz`` — the same contract the single-process
path guarantees, now with forked replicas in the picture.
"""

import multiprocessing
import os
import signal

import numpy as np

from repro.parallel import worker_rank
from repro.training import TrainConfig, Trainer, verify_checkpoint
from tests.robustness.injectors import ToyForecaster


class ParentSignalInjector:
    """Deliver a signal to the *parent* from inside worker rank 0.

    ``FaultInjector.signal_steps`` kills the current pid, which in a
    parallel fit is a worker that ignores SIGINT by design.  This
    variant reproduces an operator's Ctrl-C instead: rank 0's replica
    signals the parent process mid-forward at the scheduled calls.
    Each replica counts its own ``training_loss`` calls, one per global
    step, so call indices line up with global step indices.
    """

    def __init__(self, model, signal_calls=(), signum=signal.SIGINT):
        self._model = model
        self.signal_calls = frozenset(signal_calls)
        self.signum = signum
        self.calls = 0

    def __getattr__(self, name):
        return getattr(self._model, name)

    def training_loss(self, batch, rng=None):
        step = self.calls
        self.calls += 1
        if step in self.signal_calls and worker_rank() == 0:
            os.kill(os.getppid(), self.signum)
        return self._model.training_loss(batch, rng=rng)


def make_trainer(model, **overrides):
    defaults = dict(epochs=4, batch_size=8, lr=1e-2, seed=0, workers=2,
                    sentinel=None)
    defaults.update(overrides)
    return Trainer(model, TrainConfig(**defaults))


class TestParallelInterruption:
    def test_sigint_drains_pool_and_writes_final(self, tiny_data, tmp_path):
        model = ParentSignalInjector(ToyForecaster(tiny_data),
                                     signal_calls={1})
        trainer = make_trainer(model, checkpoint_dir=str(tmp_path))
        history = trainer.fit(tiny_data)
        assert history.interrupted
        assert multiprocessing.active_children() == []  # no orphans
        final = tmp_path / "ckpt-final.npz"
        assert final.exists()
        assert verify_checkpoint(final)["epoch"] is None
        # The snapshot was taken after the pool released the parameters:
        # the in-memory model is private, finite, and matches the file.
        for param in trainer.model.parameters():
            assert param.data.base is None
            assert np.isfinite(param.data).all()

    def test_sigterm_is_equivalent(self, tiny_data, tmp_path):
        model = ParentSignalInjector(ToyForecaster(tiny_data),
                                     signal_calls={0},
                                     signum=signal.SIGTERM)
        trainer = make_trainer(model, checkpoint_dir=str(tmp_path))
        history = trainer.fit(tiny_data)
        assert history.interrupted
        assert (tmp_path / "ckpt-final.npz").exists()
        assert multiprocessing.active_children() == []

    def test_interrupted_parallel_run_resumes_under_workers(self, tiny_data,
                                                            tmp_path):
        model = ParentSignalInjector(ToyForecaster(tiny_data),
                                     signal_calls={3})  # mid-epoch 1
        trainer = make_trainer(model, checkpoint_dir=str(tmp_path),
                               checkpoint_every=1)
        first = trainer.fit(tiny_data)
        assert first.interrupted
        assert first.epochs_run >= 1  # epoch 0 completed and checkpointed

        fresh = ToyForecaster(tiny_data, seed=99)  # different init
        resumed_trainer = make_trainer(fresh, checkpoint_dir=str(tmp_path),
                                       resume=True)
        history = resumed_trainer.fit(tiny_data)
        assert not history.interrupted
        assert history.epochs_run == 4
        # The restored epochs keep their recorded losses.
        assert history.train_loss[0] == first.train_loss[0]
        assert multiprocessing.active_children() == []

    def test_handlers_restored_after_parallel_fit(self, tiny_data):
        before = signal.getsignal(signal.SIGINT)
        model = ParentSignalInjector(ToyForecaster(tiny_data),
                                     signal_calls={0})
        make_trainer(model).fit(tiny_data)
        assert signal.getsignal(signal.SIGINT) is before
