"""On-disk fault injection: truncation, bit flips, and mid-write kills."""

import os

import numpy as np
import pytest

from repro.optim import Adam
from repro.training import (
    CheckpointCorruptError,
    CheckpointManager,
    find_latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)
from repro.training import checkpoint as checkpoint_module

from tests.robustness.injectors import ToyForecaster, flip_byte, truncate_file


@pytest.fixture
def model_and_opt(tiny_data):
    model = ToyForecaster(tiny_data)
    return model, Adam(model.parameters(), lr=1e-3)


class TestCorruptionDetection:
    def test_truncated_archive_rejected(self, tmp_path, model_and_opt):
        model, opt = model_and_opt
        path = save_checkpoint(tmp_path / "ckpt.npz", model, opt)
        truncate_file(path, fraction=0.5)
        with pytest.raises(CheckpointCorruptError, match="corrupt|checksum"):
            load_checkpoint(path, model, opt)

    def test_empty_file_rejected(self, tmp_path, model_and_opt):
        model, opt = model_and_opt
        path = save_checkpoint(tmp_path / "ckpt.npz", model, opt)
        truncate_file(path, fraction=0.0)
        with pytest.raises(CheckpointCorruptError):
            verify_checkpoint(path)

    def test_bit_flip_rejected(self, tmp_path, model_and_opt):
        model, opt = model_and_opt
        path = save_checkpoint(tmp_path / "ckpt.npz", model, opt)
        flip_byte(path)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path, model, opt)

    def test_corrupt_load_leaves_error_not_garbage(self, tmp_path,
                                                  model_and_opt):
        # The checksum is verified *before* any state is installed, so
        # a rejected archive cannot have half-restored the model.
        model, opt = model_and_opt
        path = save_checkpoint(tmp_path / "ckpt.npz", model, opt)
        before = {name: value.copy()
                  for name, value in model.state_dict().items()}
        flip_byte(path)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path, model, opt)
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, before[name])


class TestLatestDiscovery:
    def test_falls_back_past_corrupt_newest(self, tmp_path, model_and_opt):
        model, opt = model_and_opt
        older = save_checkpoint(tmp_path / "older.npz", model, opt)
        newer = save_checkpoint(tmp_path / "newer.npz", model, opt)
        os.utime(older, ns=(1_000_000_000, 1_000_000_000))
        os.utime(newer, ns=(2_000_000_000, 2_000_000_000))
        truncate_file(newer)
        assert find_latest_checkpoint(tmp_path) == older

    def test_none_when_everything_is_corrupt(self, tmp_path, model_and_opt):
        model, opt = model_and_opt
        path = save_checkpoint(tmp_path / "only.npz", model, opt)
        flip_byte(path)
        assert find_latest_checkpoint(tmp_path) is None

    def test_none_for_empty_or_missing_directory(self, tmp_path):
        assert find_latest_checkpoint(tmp_path) is None
        assert find_latest_checkpoint(tmp_path / "never-made") is None

    def test_ignores_stray_tmp_files(self, tmp_path, model_and_opt):
        # A crash can leave a half-written temp file behind; the ".tmp"
        # suffix keeps it out of the "*.npz" candidate scan entirely.
        model, opt = model_and_opt
        good = save_checkpoint(tmp_path / "good.npz", model, opt)
        (tmp_path / "good.npz.abc123.tmp").write_bytes(b"partial write")
        assert find_latest_checkpoint(tmp_path) == good


class TestMidWriteKill:
    def test_kill_during_write_preserves_old_checkpoint(
            self, tmp_path, model_and_opt, monkeypatch):
        model, opt = model_and_opt
        path = save_checkpoint(tmp_path / "ckpt.npz", model, opt)

        def killed_savez(stream, **payload):
            stream.write(b"some bytes, then the power goes out")
            raise KeyboardInterrupt

        monkeypatch.setattr(checkpoint_module.np, "savez", killed_savez)
        opt.lr = 9.9  # make the doomed snapshot differ from the first
        with pytest.raises(KeyboardInterrupt):
            save_checkpoint(tmp_path / "ckpt.npz", model, opt)
        monkeypatch.undo()
        # The published archive is still the first, fully-valid one.
        assert verify_checkpoint(path)["format_version"] >= 2
        opt.lr = 0.0
        load_checkpoint(path, model, opt)
        assert opt.lr == pytest.approx(1e-3)
        assert [f for f in os.listdir(tmp_path) if f.endswith(".tmp")] == []

    def test_kill_during_publish_preserves_old_checkpoint(
            self, tmp_path, model_and_opt, monkeypatch):
        model, opt = model_and_opt
        path = save_checkpoint(tmp_path / "ckpt.npz", model, opt)

        def killed_replace(src, dst):
            raise KeyboardInterrupt

        monkeypatch.setattr(checkpoint_module.os, "replace", killed_replace)
        with pytest.raises(KeyboardInterrupt):
            save_checkpoint(tmp_path / "ckpt.npz", model, opt)
        monkeypatch.undo()
        verify_checkpoint(path)  # old archive untouched and valid


class TestCheckpointManager:
    def test_rotation_keeps_newest(self, tmp_path, model_and_opt):
        model, opt = model_and_opt
        manager = CheckpointManager(tmp_path, keep_last=2)
        for epoch in range(5):
            manager.save(model, opt, epoch=epoch)
        kept = [os.path.basename(p) for p in manager.epoch_checkpoints()]
        assert kept == ["ckpt-epoch000003.npz", "ckpt-epoch000004.npz"]

    def test_best_pin_survives_rotation(self, tmp_path, model_and_opt):
        model, opt = model_and_opt
        manager = CheckpointManager(tmp_path, keep_last=1)
        manager.save(model, opt, epoch=0, is_best=True)
        for epoch in range(1, 4):
            manager.save(model, opt, epoch=epoch)
        assert os.path.exists(manager.best_path)
        assert verify_checkpoint(manager.best_path)["epoch"] == 0

    def test_latest_skips_a_corrupted_rotation_member(
            self, tmp_path, model_and_opt):
        model, opt = model_and_opt
        manager = CheckpointManager(tmp_path, keep_last=3)
        for epoch in range(2):
            path = manager.save(model, opt, epoch=epoch)
            os.utime(path, ns=((epoch + 1) * 10**9,) * 2)
        flip_byte(manager._epoch_path(1))
        latest = manager.latest()
        assert latest == manager._epoch_path(0)
