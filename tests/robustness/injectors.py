"""Deterministic fault injectors for the robustness suite.

Three families of faults, all reproducible:

- :class:`ToyForecaster` + :class:`FaultInjector` — a tiny protocol-
  complete model whose wrapper perturbs the loss graph at scheduled
  steps (NaN loss, finite loss with NaN gradients, exploding loss) or
  delivers a real OS signal mid-step, driving the trainer's divergence
  sentinel and interruption paths end to end.
- :func:`truncate_file` / :func:`flip_byte` — byte-level on-disk
  checkpoint corruption.
- pytest ``monkeypatch`` hooks in the tests themselves simulate a kill
  between checkpoint write start and finish.
"""

from __future__ import annotations

import os
import signal
from types import SimpleNamespace

import numpy as np

from repro.core.losses import LossBreakdown
from repro.nn import Linear, Module
from repro.nn.losses import mse_loss
from repro.tensor import Tensor, no_grad


class ToyForecaster(Module):
    """Minimal Trainer-protocol model: one linear map over closeness."""

    def __init__(self, data, seed=0):
        super().__init__()
        _n, length, channels, height, width = data.train.closeness.shape
        self._target_shape = (channels, height, width)
        self.linear = Linear(length * channels * height * width,
                             channels * height * width,
                             rng=np.random.default_rng(seed))

    def forward(self, closeness):
        flat = Tensor(closeness.reshape(closeness.shape[0], -1))
        return self.linear(flat)

    def training_loss(self, batch, rng=None):
        prediction = self.forward(batch.closeness)
        target = Tensor(batch.target.reshape(len(batch), -1))
        reg = mse_loss(prediction, target)
        zero = Tensor(0.0)
        breakdown = LossBreakdown(total=reg, dis=zero, push=zero, pull=zero,
                                  reg=reg)
        return breakdown, SimpleNamespace(prediction=prediction)

    def predict(self, batch):
        with no_grad():
            prediction = self.forward(batch.closeness)
        return prediction.data.reshape((len(batch),) + self._target_shape)


class FaultInjector:
    """Wrap a model and corrupt its loss at scheduled training steps.

    ``training_loss`` calls are counted from 0 across the whole fit;
    everything else (parameters, modes, state dicts, predict) delegates
    to the wrapped model, so the Trainer sees a normal protocol model.

    Parameters
    ----------
    nan_loss_steps:
        Steps whose loss is multiplied by NaN (non-finite loss *and*
        gradients — the classic divergence signature).
    nan_grad_steps:
        Steps that gain a term whose forward value is exactly 0 but
        whose backward divides by zero: the loss stays finite while a
        parameter gradient goes NaN (``sqrt(relu(-|w|))`` at 0).
    scale_loss_steps:
        ``{step: factor}`` — multiply the loss, exploding the gradient
        norm without leaving finite arithmetic.
    signal_steps:
        Steps at which ``signum`` is delivered to the current process
        *during* the forward pass, like an operator's Ctrl-C.
    """

    def __init__(self, model, nan_loss_steps=(), nan_grad_steps=(),
                 scale_loss_steps=None, signal_steps=(),
                 signum=signal.SIGINT):
        self._model = model
        self.nan_loss_steps = frozenset(nan_loss_steps)
        self.nan_grad_steps = frozenset(nan_grad_steps)
        self.scale_loss_steps = dict(scale_loss_steps or {})
        self.signal_steps = frozenset(signal_steps)
        self.signum = signum
        self.calls = 0

    def __getattr__(self, name):
        return getattr(self._model, name)

    def training_loss(self, batch, rng=None):
        breakdown, outputs = self._model.training_loss(batch, rng=rng)
        step = self.calls
        self.calls += 1
        if step in self.nan_loss_steps:
            breakdown.total = breakdown.total * float("nan")
        if step in self.nan_grad_steps:
            weight = self._model.parameters()[0]
            # relu(-|w|) is exactly 0, so sqrt's backward divides by
            # zero: 0-valued forward, NaN deposited into the gradient.
            zero_term = (-weight.abs()).relu().sqrt().sum() * 0.0
            breakdown.total = breakdown.total + zero_term
        factor = self.scale_loss_steps.get(step)
        if factor is not None:
            breakdown.total = breakdown.total * factor
        if step in self.signal_steps:
            os.kill(os.getpid(), self.signum)
        return breakdown, outputs


def truncate_file(path, fraction=0.5):
    """Cut a file to the leading ``fraction`` of its bytes (crash tail)."""
    with open(path, "rb") as stream:
        blob = stream.read()
    with open(path, "wb") as stream:
        stream.write(blob[:int(len(blob) * fraction)])


def flip_byte(path, offset=None):
    """XOR one byte (middle of the file by default): silent media error."""
    with open(path, "rb") as stream:
        blob = bytearray(stream.read())
    if offset is None:
        offset = len(blob) // 2
    blob[offset] ^= 0xFF
    with open(path, "wb") as stream:
        stream.write(blob)
