"""Graceful interruption: SIGINT/SIGTERM mid-step, resumable snapshots."""

import os
import signal
import time

import pytest

from repro.training import TrainConfig, Trainer, verify_checkpoint

from tests.robustness.injectors import FaultInjector, ToyForecaster


def make_trainer(model, **overrides):
    defaults = dict(epochs=3, batch_size=8, lr=1e-2, seed=0)
    defaults.update(overrides)
    return Trainer(model, TrainConfig(**defaults))


class TestSignalHandling:
    def test_sigint_finishes_the_step_and_writes_final(self, tiny_data,
                                                       tmp_path):
        # The signal lands *during* step 1's forward pass; the trainer
        # must complete that step, then stop and write ckpt-final.npz.
        model = FaultInjector(ToyForecaster(tiny_data), signal_steps={1})
        trainer = make_trainer(model, checkpoint_dir=str(tmp_path))
        history = trainer.fit(tiny_data)
        assert history.interrupted
        assert trainer.optimizer._step_count == 2  # steps 0 and 1 both ran
        assert history.epochs_run == 0  # partial epoch not recorded
        final = tmp_path / "ckpt-final.npz"
        assert final.exists()
        assert verify_checkpoint(final)["epoch"] is None

    def test_sigterm_is_equivalent(self, tiny_data, tmp_path):
        model = FaultInjector(ToyForecaster(tiny_data), signal_steps={0},
                              signum=signal.SIGTERM)
        trainer = make_trainer(model, checkpoint_dir=str(tmp_path))
        history = trainer.fit(tiny_data)
        assert history.interrupted
        assert (tmp_path / "ckpt-final.npz").exists()

    def test_interrupt_without_checkpoint_dir_just_stops(self, tiny_data):
        model = FaultInjector(ToyForecaster(tiny_data), signal_steps={0})
        trainer = make_trainer(model)
        history = trainer.fit(tiny_data)
        assert history.interrupted

    def test_handlers_restored_after_fit(self, tiny_data):
        before = signal.getsignal(signal.SIGINT)
        model = FaultInjector(ToyForecaster(tiny_data), signal_steps={0})
        make_trainer(model).fit(tiny_data)
        assert signal.getsignal(signal.SIGINT) is before

    def test_second_signal_raises_keyboard_interrupt(self, tiny_data):
        trainer = make_trainer(ToyForecaster(tiny_data))
        installed = trainer._install_signal_handlers()
        try:
            os.kill(os.getpid(), signal.SIGINT)
            time.sleep(0.01)  # let the handler run
            assert trainer._interrupt_requested
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGINT)
                time.sleep(0.05)
        finally:
            for signum, old in installed:
                signal.signal(signum, old)


class TestResume:
    def test_resume_completes_an_interrupted_run(self, tiny_data, tmp_path):
        model = FaultInjector(ToyForecaster(tiny_data),
                              signal_steps={3})  # mid-epoch 1
        trainer = make_trainer(model, checkpoint_dir=str(tmp_path),
                               checkpoint_every=1)
        first = trainer.fit(tiny_data)
        assert first.interrupted
        assert first.epochs_run == 1  # epoch 0 checkpointed, epoch 1 partial

        fresh = ToyForecaster(tiny_data, seed=99)  # different init
        resumed_trainer = make_trainer(fresh, checkpoint_dir=str(tmp_path),
                                       resume=True)
        history = resumed_trainer.fit(tiny_data)
        assert not history.interrupted  # the clean finish clears the flag
        assert history.epochs_run == 3
        # Epoch 0's loss comes from the restored history, not a re-run.
        assert history.train_loss[0] == pytest.approx(first.train_loss[0])

    def test_resume_with_empty_directory_starts_fresh(self, tiny_data,
                                                      tmp_path):
        trainer = make_trainer(ToyForecaster(tiny_data),
                               checkpoint_dir=str(tmp_path), resume=True)
        history = trainer.fit(tiny_data)
        assert history.epochs_run == 3
        assert not history.interrupted

    def test_resume_from_explicit_path(self, tiny_data, tmp_path):
        model = ToyForecaster(tiny_data)
        trainer = make_trainer(model, epochs=2, checkpoint_dir=str(tmp_path),
                               checkpoint_every=1)
        trainer.fit(tiny_data)

        again = make_trainer(ToyForecaster(tiny_data), epochs=4)
        history = again.fit(tiny_data,
                            resume_from=str(tmp_path / "ckpt-epoch000001"))
        assert history.epochs_run == 4  # 2 restored + 2 new

    def test_completed_run_resumes_to_a_noop(self, tiny_data, tmp_path):
        trainer = make_trainer(ToyForecaster(tiny_data), epochs=2,
                               checkpoint_dir=str(tmp_path),
                               checkpoint_every=1)
        first = trainer.fit(tiny_data)
        resumed = make_trainer(ToyForecaster(tiny_data), epochs=2,
                               checkpoint_dir=str(tmp_path), resume=True)
        history = resumed.fit(tiny_data)
        assert history.epochs_run == 2
        assert history.train_loss == pytest.approx(first.train_loss)
