"""Bit-equivalence and plan-cache behaviour of the compiled training step."""

import numpy as np
import pytest

from repro.compile import StepCompiler, batch_signature
from repro.optim import Adam
from repro.profiling import OpProfiler, profile
from repro.tensor import Tensor, default_dtype, detect_anomaly

from tests.compile.conftest import (assert_bitwise, compiled_steps,
                                    eager_steps, make_baseline_model,
                                    make_muse)

STEPS = 5  # build + shadow + >= 3 trusted replays per signature


def batches_for(data, count, size=8):
    """Deterministic same-signature batches cycling over the train split."""
    n = len(data.train)
    return [data.train.take([(i * size + j) % n for j in range(size)])
            for i in range(count)]


class TestBitEquivalence:
    def test_muse_float32(self, tiny_data, muse_config):
        batches = batches_for(tiny_data, STEPS)
        with default_dtype(np.float32):
            data = tiny_data.astype(np.float32)
            batches32 = [b.astype(np.float32) for b in batches]
            model = make_muse(muse_config)
            optimizer = Adam(model.parameters(), lr=1e-3)
            eager = eager_steps(model, optimizer,
                                np.random.default_rng(0), batches32)
            model2 = make_muse(muse_config)
            optimizer2 = Adam(model2.parameters(), lr=1e-3)
            compiled = compiled_steps(model2, optimizer2,
                                      np.random.default_rng(0), batches32)
        assert_bitwise(eager, compiled)
        report = compiled[3].report()
        assert report["plans_built"] == 1
        assert report["plans_validated"] == 1
        assert report["compiled_steps"] >= 3
        assert report["fallbacks"] == {}
        del data

    @pytest.mark.parametrize("name", ["RNN", "CONVGCN"])
    def test_baselines_float64(self, tiny_data, name):
        batches = batches_for(tiny_data, STEPS)
        model = make_baseline_model(name, tiny_data)
        optimizer = Adam(model.parameters(), lr=1e-3)
        eager = eager_steps(model, optimizer, np.random.default_rng(0),
                            batches)
        model2 = make_baseline_model(name, tiny_data)
        optimizer2 = Adam(model2.parameters(), lr=1e-3)
        compiled = compiled_steps(model2, optimizer2,
                                  np.random.default_rng(0), batches)
        assert_bitwise(eager, compiled)
        assert compiled[3].report()["compiled_steps"] >= 3

    def test_full_fit_matches_eager(self, tiny_data, muse_config):
        from repro.training import Trainer, TrainConfig

        def fit(compile_flag):
            model = make_muse(muse_config)
            trainer = Trainer(model, TrainConfig(
                epochs=2, batch_size=8, seed=0, dtype="float32",
                compile=compile_flag))
            history = trainer.fit(tiny_data)
            params = [p.data.copy() for p in trainer.optimizer.parameters]
            return history, params

        h_eager, p_eager = fit(False)
        h_comp, p_comp = fit(True)
        assert h_eager.train_loss == h_comp.train_loss
        assert h_eager.val_rmse == h_comp.val_rmse
        for a, b in zip(p_eager, p_comp):
            np.testing.assert_array_equal(a, b)
        assert h_eager.compiled is None
        assert h_comp.compiled["compiled_steps"] > 0
        assert h_comp.compiled["plans_validated"] >= 1


class TestPlanCache:
    def test_shape_change_builds_second_plan(self, tiny_data):
        model = make_baseline_model("RNN", tiny_data)
        optimizer = Adam(model.parameters(), lr=1e-3)
        compiler = StepCompiler(model, optimizer, np.random.default_rng(0))
        full = batches_for(tiny_data, 3, size=8)
        ragged = batches_for(tiny_data, 3, size=5)
        for batch in full + ragged:
            compiler.step(batch)
            optimizer.step()
        report = compiler.report()
        assert report["plans_built"] == 2
        assert report["plans_validated"] == 2
        assert report["compiled_steps"] == 2  # one trusted replay each

    def test_dtype_policy_changes_signature(self, tiny_data):
        batch = batches_for(tiny_data, 1)[0].astype(np.float32)
        with default_dtype(np.float32):
            sig32 = batch_signature(batch)
        with default_dtype(np.float64):
            sig_mixed = batch_signature(batch)
        assert sig32 != sig_mixed

    def test_detect_anomaly_falls_back_to_eager(self, tiny_data):
        model = make_baseline_model("RNN", tiny_data)
        optimizer = Adam(model.parameters(), lr=1e-3)
        batches = batches_for(tiny_data, 2)

        reference = make_baseline_model("RNN", tiny_data)
        ref_opt = Adam(reference.parameters(), lr=1e-3)
        eager = eager_steps(reference, ref_opt, np.random.default_rng(0),
                            batches)

        compiler = StepCompiler(model, optimizer, np.random.default_rng(0))
        losses = []
        with detect_anomaly():
            for batch in batches:
                losses.append(compiler.step(batch))
                optimizer.step()
        assert losses == eager[0]
        report = compiler.report()
        assert report["plans_built"] == 0
        assert report["eager_steps"] == 2
        assert "detect_anomaly" in report["fallbacks"]

    def test_recording_failure_pins_eager(self, tiny_data):
        """A graph op the recorder can't claim forces (correct) eager."""
        from types import SimpleNamespace

        from repro.core.losses import LossBreakdown
        from repro.nn import Linear, Module
        from repro.tensor.tensor import Tensor as T

        class OpaqueModel(Module):
            """Builds one tape node via raw _from_op — unrecordable."""

            def __init__(self, data):
                super().__init__()
                n, length, c, h, w = data.train.closeness.shape
                self._out_shape = (c, h, w)
                self.linear = Linear(length * c * h * w, c * h * w,
                                     rng=np.random.default_rng(0))

            def training_loss(self, batch, rng=None):
                flat = Tensor(np.ascontiguousarray(batch.closeness)
                              .reshape(len(batch), -1))
                hidden = self.linear(flat)
                # An op instrumented for autodiff but not for replay.
                opaque = T._from_op(
                    np.tanh(hidden.data), (hidden,),
                    lambda g: hidden._accumulate_grad(
                        g * (1.0 - np.tanh(hidden.data) ** 2)),
                    name="opaque")
                target = Tensor(np.ascontiguousarray(batch.target)
                                .reshape(len(batch), -1))
                reg = ((opaque - target) * (opaque - target)).mean()
                zero = Tensor(0.0)
                breakdown = LossBreakdown(total=reg, dis=zero, push=zero,
                                          pull=zero, reg=reg)
                return breakdown, SimpleNamespace(prediction=opaque)

        batches = batches_for(tiny_data, 3)
        reference = OpaqueModel(tiny_data)
        ref_opt = Adam(reference.parameters(), lr=1e-3)
        eager = eager_steps(reference, ref_opt, np.random.default_rng(0),
                            batches)

        model = OpaqueModel(tiny_data)
        optimizer = Adam(model.parameters(), lr=1e-3)
        compiled = compiled_steps(model, optimizer,
                                  np.random.default_rng(0), batches)
        assert_bitwise(eager, compiled)
        report = compiled[3].report()
        assert report["plans_built"] == 0
        assert report["compiled_steps"] == 0
        assert any("recording failed" in reason
                   for reason in report["fallbacks"].values())

    def test_rollback_zero_grad_interplay(self, tiny_data):
        """A trusted plan survives zero_grad (grad=None) between steps.

        The trainer's rollback path restores a snapshot and calls
        ``zero_grad`` on every parameter, dropping the gradient buffers
        a replay would normally rewrite in place — the next replay must
        reallocate and still match eager exactly.
        """
        batches = batches_for(tiny_data, 4)
        reference = make_baseline_model("RNN", tiny_data)
        ref_opt = Adam(reference.parameters(), lr=1e-3)
        ref_losses = []
        rng = np.random.default_rng(0)
        for i, batch in enumerate(batches):
            ref_opt.zero_grad()
            breakdown, _ = reference.training_loss(batch, rng=rng)
            breakdown.total.backward()
            ref_losses.append((breakdown.total.item(),
                               breakdown.reg.item()))
            if i != 2:  # step 2's update is "rolled back" below
                ref_opt.step()

        model = make_baseline_model("RNN", tiny_data)
        optimizer = Adam(model.parameters(), lr=1e-3)
        compiler = StepCompiler(model, optimizer, np.random.default_rng(0))
        losses = []
        for i, batch in enumerate(batches):
            losses.append(compiler.step(batch))
            if i == 2:
                optimizer.zero_grad()  # sentinel rollback drops this step
            else:
                optimizer.step()
        assert losses == ref_losses
        for a, b in zip(reference.parameters(), model.parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_workers_disables_compile(self, tiny_data, muse_config):
        from repro.training import Trainer, TrainConfig

        model = make_muse(muse_config)
        trainer = Trainer(model, TrainConfig(
            epochs=1, batch_size=8, seed=0, workers=1, compile=True))
        history = trainer.fit(tiny_data)
        assert history.compiled["enabled"] is False
        assert "worker" in history.compiled["reason"]


class TestZeroAllocation:
    def test_no_forward_allocations_after_warmup(self, tiny_data):
        model = make_baseline_model("RNN", tiny_data)
        optimizer = Adam(model.parameters(), lr=1e-3)
        compiler = StepCompiler(model, optimizer, np.random.default_rng(0))
        batches = batches_for(tiny_data, 6)
        for batch in batches[:3]:  # build + shadow + first trusted replay
            compiler.step(batch)
            optimizer.step()
        prof = OpProfiler()
        with profile(prof):
            for batch in batches[3:]:
                compiler.step(batch, profiler=prof)
                optimizer.step()
        assert compiler.report()["compiled_steps"] >= 4
        # Replays never touch _from_op: zero forward-arena bytes.
        assert prof.forward_alloc_bytes == 0
        assert prof.compiled_steps == 3

    def test_eager_steps_do_allocate(self, tiny_data):
        """Control: the same steps run eagerly allocate megabytes."""
        model = make_baseline_model("RNN", tiny_data)
        optimizer = Adam(model.parameters(), lr=1e-3)
        rng = np.random.default_rng(0)
        prof = OpProfiler()
        with profile(prof):
            eager_steps(model, optimizer, rng, batches_for(tiny_data, 2))
        assert prof.forward_alloc_bytes > 0
