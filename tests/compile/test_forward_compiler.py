"""Tape-free compiled forwards: equality, arena packing, serving."""

import tracemalloc

import numpy as np
import pytest

from repro.compile import ForwardCompiler
from repro.tensor import no_grad

from tests.compile.conftest import make_muse


def eager_predict(model, batch):
    with no_grad():
        return np.asarray(model.predict(batch))


@pytest.fixture
def muse(tiny_data, muse_config):
    model = make_muse(muse_config)
    model.eval()
    return model


class TestForwardCompiler:
    def test_bitwise_equality_across_batches(self, tiny_data, muse):
        fc = ForwardCompiler(muse)
        test = tiny_data.test
        for start in range(0, 6):
            batch = test.slice(start, start + 4)
            got = fc.forward(batch)
            np.testing.assert_array_equal(got, eager_predict(muse, batch))
        report = fc.report()
        assert report["plans_built"] == 1
        assert report["plans_validated"] == 1
        assert report["compiled_forwards"] >= 4
        assert report["fallbacks"] == {}

    def test_caller_batch_views_stay_intact(self, tiny_data, muse):
        """Replaying through zero-copy slices must not write the split.

        Regression: the plan's pinned inputs once aliased the recorded
        batch's arrays — when those were views of the test split, every
        replay overwrote the dataset in place.
        """
        test = tiny_data.test
        before = (test.closeness.copy(), test.period.copy(),
                  test.trend.copy(), test.target.copy())
        fc = ForwardCompiler(muse)
        for start in range(0, 6):
            fc.forward(test.slice(start, start + 4))
        after = (test.closeness, test.period, test.trend, test.target)
        for a, b in zip(before, after):
            np.testing.assert_array_equal(a, b)

    def test_replay_returns_independent_copy(self, tiny_data, muse):
        fc = ForwardCompiler(muse)
        test = tiny_data.test
        first = fc.forward(test.slice(0, 4))
        kept = first.copy()
        for start in range(1, 5):
            fc.forward(test.slice(start, start + 4))
        np.testing.assert_array_equal(first, kept)

    def test_arena_reuses_bytes(self, tiny_data, muse):
        fc = ForwardCompiler(muse)
        batch = tiny_data.test.slice(0, 4)
        for _ in range(3):
            fc.forward(batch)
        report = fc.report()
        assert report["arena_bytes"] > 0
        assert report["arena_reuse_pct"] > 0.0

    def test_trusted_replay_allocates_no_buffers(self, tiny_data, muse):
        fc = ForwardCompiler(muse)
        batch = tiny_data.test.slice(0, 4)
        for _ in range(3):  # build + shadow + first trusted replay
            fc.forward(batch)

        tracemalloc.start()
        base = tracemalloc.take_snapshot()
        compiled = fc.forward(batch)
        compiled_stats = tracemalloc.take_snapshot().compare_to(base,
                                                                "filename")
        compiled_bytes = sum(max(s.size_diff, 0) for s in compiled_stats)

        base = tracemalloc.take_snapshot()
        eager = eager_predict(muse, batch)
        eager_stats = tracemalloc.take_snapshot().compare_to(base,
                                                             "filename")
        eager_bytes = sum(max(s.size_diff, 0) for s in eager_stats)
        tracemalloc.stop()

        np.testing.assert_array_equal(compiled, eager)
        # The replay allocates only the returned copy (plus trace noise);
        # the eager forward rebuilds every intermediate buffer.
        assert compiled_bytes < compiled.nbytes + 64 * 1024
        assert eager_bytes > 4 * compiled.nbytes


class TestServingIntegration:
    def test_serve_config_rejects_compile_with_replicas(self):
        from repro.serve import ServeConfig

        with pytest.raises(ValueError, match="replicas"):
            ServeConfig(replicas=1, compile=True)

    def test_server_compiled_matches_eager(self, tiny_data, muse_config):
        from concurrent.futures import ThreadPoolExecutor

        from repro.serve import ForecastServer, ServeConfig

        test = tiny_data.test
        queries = [test.slice(i % len(test), i % len(test) + 1)
                   for i in range(24)]

        def serve(compile_flag):
            model = make_muse(muse_config)
            config = ServeConfig(max_batch=4, max_wait_ms=1.0,
                                 compile=compile_flag)
            with ForecastServer(model, config, template=test) as server:
                with ThreadPoolExecutor(max_workers=4) as clients:
                    rows = list(clients.map(server.forecast, queries))
                snap = server.snapshot()
            return np.concatenate(rows, axis=0), snap

        eager_rows, _ = serve(False)
        compiled_rows, snap = serve(True)
        # Row values are batching-composition-dependent only through
        # BLAS blocking; compiled and eager runs may coalesce
        # differently, so compare against per-query eager forwards.
        model = make_muse(muse_config)
        model.eval()
        reference = np.concatenate(
            [eager_predict(model, q) for q in queries], axis=0)
        assert np.allclose(compiled_rows, reference, atol=1e-12)
        assert np.allclose(eager_rows, reference, atol=1e-12)
        assert "compile" in snap
        assert snap["compile"]["plans_built"] >= 1

    def test_hot_swap_flows_through_compiled_plan(self, tiny_data,
                                                  muse_config):
        import tempfile

        from repro.optim import Adam
        from repro.serve import ForecastServer, ServeConfig
        from repro.training.checkpoint import (CheckpointManager,
                                               find_latest_checkpoint)

        trained = make_muse(muse_config)
        rng = np.random.default_rng(0)
        optimizer = Adam(trained.parameters(), lr=1e-3)
        batch = tiny_data.train.take(range(8))
        for _ in range(2):
            optimizer.zero_grad()
            breakdown, _ = trained.training_loss(batch, rng=rng)
            breakdown.total.backward()
            optimizer.step()
        trained.eval()

        test = tiny_data.test
        query = test.slice(0, 4)
        with tempfile.TemporaryDirectory() as tmp:
            CheckpointManager(tmp, keep_last=1).save(trained, optimizer,
                                                     epoch=0)
            ckpt = find_latest_checkpoint(tmp)
            fresh = make_muse(muse_config)
            config = ServeConfig(max_batch=4, compile=True)
            with ForecastServer(fresh, config, template=test) as server:
                for _ in range(3):  # build + shadow + trusted replay
                    before = server.forecast(query)
                server.load_checkpoint(ckpt)
                after = server.forecast(query)
        assert not np.array_equal(before, after)
        np.testing.assert_array_equal(after, eager_predict(trained, query))
