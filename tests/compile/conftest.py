"""Fixtures for the graph-compiler suite: tiny data + small models."""

import numpy as np
import pytest

from repro.data import load_dataset, prepare_forecast_data


@pytest.fixture(scope="session")
def tiny_data():
    """Tiny prepared dataset (cached per session)."""
    dataset = load_dataset("nyc-bike", scale="tiny")
    return prepare_forecast_data(dataset, max_train_samples=24,
                                 max_test_samples=10)


@pytest.fixture(scope="session")
def muse_config(tiny_data):
    """Small MUSE-Net config matching the tiny dataset."""
    from repro.core import MuseConfig

    return MuseConfig.for_data(
        tiny_data, rep_channels=8, latent_interactive=16, res_blocks=1,
        plus_channels=2, decoder_hidden=32,
    )


def make_muse(muse_config, seed=0):
    from dataclasses import replace

    from repro.core import MUSENet

    return MUSENet(replace(muse_config, seed=seed))


def make_baseline_model(name, tiny_data, seed=0):
    from repro.baselines import BaselineConfig, make_baseline

    config = BaselineConfig.for_data(tiny_data, hidden=16, seed=seed)
    return make_baseline(name, config)


def eager_steps(model, optimizer, rng, batches):
    """Reference eager loop; returns (losses, final grads, final params)."""
    losses = []
    for batch in batches:
        optimizer.zero_grad()
        breakdown, _ = model.training_loss(batch, rng=rng)
        breakdown.total.backward()
        losses.append((breakdown.total.item(), breakdown.reg.item()))
        optimizer.step()
    grads = [None if p.grad is None else p.grad.copy()
             for p in optimizer.parameters]
    params = [p.data.copy() for p in optimizer.parameters]
    return losses, grads, params


def compiled_steps(model, optimizer, rng, batches):
    """Same loop through a StepCompiler; returns (losses, grads, params,
    compiler)."""
    from repro.compile import StepCompiler

    compiler = StepCompiler(model, optimizer, rng)
    losses = []
    for batch in batches:
        losses.append(compiler.step(batch))
        optimizer.step()
    grads = [None if p.grad is None else p.grad.copy()
             for p in optimizer.parameters]
    params = [p.data.copy() for p in optimizer.parameters]
    return losses, grads, params, compiler


def assert_bitwise(eager, compiled):
    """Exact (atol 0) comparison of two (losses, grads, params) triples."""
    e_losses, e_grads, e_params = eager[:3]
    c_losses, c_grads, c_params = compiled[:3]
    assert e_losses == c_losses
    for a, b in zip(e_grads, c_grads):
        if a is None or b is None:
            assert a is None and b is None
        else:
            np.testing.assert_array_equal(a, b)
    for a, b in zip(e_params, c_params):
        np.testing.assert_array_equal(a, b)
