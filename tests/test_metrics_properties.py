"""Hypothesis property tests for the evaluation metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics import evaluate_flows, mae, mape, rmse

ARRAYS = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 6), st.integers(1, 8)),
    elements=st.floats(-100, 100, allow_nan=False),
)


@given(ARRAYS)
@settings(max_examples=50, deadline=None)
def test_metrics_zero_iff_perfect(arr):
    assert rmse(arr, arr) == 0.0
    assert mae(arr, arr) == 0.0


@given(ARRAYS, ARRAYS)
@settings(max_examples=50, deadline=None)
def test_metrics_nonnegative(a, b):
    if a.shape != b.shape:
        return
    assert rmse(a, b) >= 0.0
    assert mae(a, b) >= 0.0


@given(ARRAYS, ARRAYS)
@settings(max_examples=50, deadline=None)
def test_rmse_dominates_mae(a, b):
    # RMSE >= MAE always (Jensen).
    if a.shape != b.shape:
        return
    assert rmse(a, b) >= mae(a, b) - 1e-12


@given(ARRAYS, ARRAYS)
@settings(max_examples=50, deadline=None)
def test_metrics_symmetric(a, b):
    if a.shape != b.shape:
        return
    assert rmse(a, b) == rmse(b, a)
    assert mae(a, b) == mae(b, a)


@given(ARRAYS, st.floats(0.1, 10.0))
@settings(max_examples=50, deadline=None)
def test_rmse_scale_equivariant(a, scale):
    b = a + 1.0
    np.testing.assert_allclose(rmse(a * scale, b * scale), scale * rmse(a, b),
                               rtol=1e-9)


@given(ARRAYS, st.floats(0.5, 5.0))
@settings(max_examples=50, deadline=None)
def test_mape_scale_invariant(a, scale):
    # Percentages don't change under unit changes.
    target = np.abs(a) + 2.0  # clear of the mask threshold
    prediction = target * 1.1
    np.testing.assert_allclose(
        mape(prediction * scale, target * scale), mape(prediction, target),
        rtol=1e-9,
    )


@given(
    hnp.arrays(np.float64, st.tuples(st.integers(1, 4), st.just(2),
                                     st.integers(2, 3), st.integers(2, 3)),
               elements=st.floats(0, 50, allow_nan=False))
)
@settings(max_examples=40, deadline=None)
def test_evaluate_flows_consistent_with_channel_metrics(target):
    prediction = target + 1.0
    report = evaluate_flows(prediction, target)
    np.testing.assert_allclose(report.outflow_rmse,
                               rmse(prediction[:, 0], target[:, 0]))
    np.testing.assert_allclose(report.inflow_mae,
                               mae(prediction[:, 1], target[:, 1]))
