"""DriftSentinel: spike/drift separation, cold start, rearm."""

import numpy as np
import pytest

from repro.stream import DriftSentinel


def warmed(rng=None, **kwargs):
    """A sentinel fed enough healthy errors to arm its baseline."""
    kwargs.setdefault("warmup", 8)
    sentinel = DriftSentinel(**kwargs)
    rng = rng or np.random.default_rng(0)
    while not sentinel.armed:
        assert sentinel.observe(1.0 + 0.05 * rng.standard_normal()) == \
            "warmup"
    return sentinel


class TestColdStart:
    def test_warmup_classifies_nothing(self):
        sentinel = DriftSentinel(warmup=4)
        results = [sentinel.observe(e) for e in (1.0, 50.0, 1.0, 2.0)]
        assert results == ["warmup"] * 4
        assert sentinel.armed

    def test_first_error_is_the_baseline(self):
        sentinel = DriftSentinel(warmup=2)
        sentinel.observe(3.0)
        assert sentinel.baseline_mean == 3.0

    def test_zero_variance_baseline_does_not_divide_by_zero(self):
        sentinel = DriftSentinel(warmup=2)
        sentinel.observe(1.0)
        sentinel.observe(1.0)  # identical: variance stays 0
        assert sentinel.observe(1.0) in ("ok", "spike")  # no crash

    def test_warmup_bound_validated(self):
        with pytest.raises(ValueError, match="warmup"):
            DriftSentinel(warmup=1)


class TestSpikeVsDrift:
    def test_steady_errors_stay_ok(self):
        sentinel = warmed()
        rng = np.random.default_rng(1)
        for _ in range(200):
            assert sentinel.observe(
                1.0 + 0.05 * rng.standard_normal()) == "ok"
        assert sentinel.drifts == 0

    def test_single_spike_does_not_confirm_drift(self):
        sentinel = warmed(threshold=8.0, increment_cap=3.0)
        assert sentinel.observe(100.0) == "spike"
        # The accumulator moved by at most increment_cap — not enough.
        assert sentinel.cusum <= sentinel.increment_cap
        # ...and the baseline was not dragged up by the outlier.
        assert sentinel.baseline_mean < 2.0
        rng = np.random.default_rng(2)
        for _ in range(20):
            assert sentinel.observe(
                1.0 + 0.05 * rng.standard_normal()) == "ok"

    def test_run_of_spikes_confirms_drift(self):
        # A hard regime change looks like spikes forever; the capped
        # increments must still accumulate to the threshold.
        sentinel = warmed(threshold=8.0, increment_cap=3.0)
        states = [sentinel.observe(100.0) for _ in range(3)]
        assert states[:2] == ["spike", "spike"]
        assert states[2] == "drift"
        assert sentinel.drifts == 1

    def test_sustained_moderate_shift_confirms_drift(self):
        # A shift below spike_z sigma accumulates through the normal
        # CUSUM path.
        sentinel = warmed(threshold=8.0, slack=0.5, spike_z=6.0)
        state = "ok"
        for _ in range(100):
            state = sentinel.observe(1.5)
            if state == "drift":
                break
        assert state == "drift"

    def test_nonfinite_error_is_spike_and_keeps_baseline(self):
        sentinel = warmed()
        before = sentinel.baseline_mean
        assert sentinel.observe(float("nan")) == "spike"
        assert sentinel.observe(float("inf")) == "spike"
        assert sentinel.baseline_mean == before

    def test_healthy_errors_drain_the_accumulator(self):
        sentinel = warmed(threshold=8.0)
        sentinel.observe(100.0)
        assert sentinel.cusum > 0
        for _ in range(30):
            sentinel.observe(1.0)
        assert sentinel.cusum == 0.0


class TestRearm:
    def test_rearm_resets_accumulator_and_reenters_warmup(self):
        sentinel = warmed(threshold=8.0)
        for _ in range(3):
            sentinel.observe(100.0)
        assert sentinel.cusum > 0
        sentinel.rearm()
        assert sentinel.cusum == 0.0
        assert not sentinel.armed
        # The new error scale seeds a fresh baseline: a level that
        # would have been a permanent spike is the new normal.
        for _ in range(sentinel.warmup):
            assert sentinel.observe(50.0) == "warmup"
        assert sentinel.observe(50.0) == "ok"

    def test_rearm_keeps_lifetime_counters(self):
        sentinel = warmed()
        sentinel.observe(100.0)
        spikes = sentinel.spikes
        sentinel.rearm()
        assert sentinel.spikes == spikes

    def test_recent_window_is_bounded_and_cleared(self):
        sentinel = warmed(window=16)
        for i in range(100):
            sentinel.observe(1.0)
        assert len(sentinel.recent) == 16
        sentinel.rearm()
        assert len(sentinel.recent) == 0


class TestReport:
    def test_report_is_json_able_and_complete(self):
        import json
        sentinel = warmed()
        sentinel.observe(1.2)
        report = sentinel.report()
        json.dumps(report)
        for key in ("armed", "ema_mean", "ema_std", "cusum", "threshold",
                    "drifts", "spikes", "recent_mean", "recent_max",
                    "recent_count"):
            assert key in report

    def test_empty_report_before_any_observation(self):
        report = DriftSentinel().report()
        assert report["recent_count"] == 0
        assert report["recent_mean"] is None
