"""StreamRuntime integration: ladder, staleness, masking, hot swap.

Small geometry (2x2 grid, min_index 8) so every test runs a real model
through the real server without the simulate-scale warmup cost.
"""

import numpy as np
import pytest

from repro.core import MuseConfig, MUSENet
from repro.data import MinMaxScaler, MultiPeriodicity, build_samples
from repro.serve.server import ServeConfig
from repro.stream import (
    AdaptationConfig,
    StreamConfig,
    StreamRuntime,
    Tick,
)
from repro.training import Trainer

SHAPE = (2, 2, 2)
SAMPLES_PER_DAY = 4


def make_periodicity():
    # min_index = max(2, 1*4, 1*8) = 8
    return MultiPeriodicity(2, 1, 1, samples_per_day=SAMPLES_PER_DAY,
                            trend_lag=8)


def make_model(seed=0):
    p = make_periodicity()
    return MUSENet(MuseConfig(
        len_closeness=p.len_closeness, len_period=p.len_period,
        len_trend=p.len_trend, height=2, width=2, rep_channels=4,
        latent_interactive=8, res_blocks=1, plus_channels=2,
        decoder_hidden=8, gen_weight=0.05, seed=seed))


def make_flows(ticks, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 10.0, size=(ticks,) + SHAPE)


def make_runtime(flows_warm, config=None, model_factory=None,
                 checkpoint_dir=None, seed=0):
    scaler = MinMaxScaler((-0.9, 0.9)).fit(flows_warm)
    runtime = StreamRuntime(
        make_model(seed), scaler, make_periodicity(), SHAPE,
        SAMPLES_PER_DAY, config=config, model_factory=model_factory,
        checkpoint_dir=checkpoint_dir)
    runtime.warm_start(flows_warm)
    return runtime


def live_tick(flows, index):
    return Tick(index=index, frame=flows[index])


class TestCleanStreamIdentity:
    def test_live_forecasts_match_offline_pipeline_bitwise(self):
        # The tentpole contract: on a clean stream the runtime's model
        # answers equal build_samples -> predict_scaled exactly.
        flows = make_flows(32)
        warm = 20
        runtime = make_runtime(flows[:warm])
        trainer = Trainer(runtime.server.model)
        scaled = runtime.scaler.transform(flows)
        with runtime:
            for index in range(warm, len(flows)):
                result = runtime.forecast()
                assert result.index == index
                assert result.source == "model"
                assert result.imputed == {"closeness": 0, "period": 0,
                                          "trend": 0}
                offline = runtime.scaler.inverse_transform(np.asarray(
                    trainer.predict_scaled(
                        build_samples(scaled, runtime.periodicity,
                                      [index])))[0])
                assert np.array_equal(result.flows, offline)
                runtime.ingest(live_tick(flows, index))


class TestDegradationLadder:
    def test_ladder_walks_zeros_persistence_climatology(self):
        p = make_periodicity()
        flows = make_flows(16)
        scaler = MinMaxScaler((-0.9, 0.9)).fit(flows)
        runtime = StreamRuntime(make_model(), scaler, p, SHAPE,
                                SAMPLES_PER_DAY)
        with runtime:
            # Nothing observed: the bottom rung answers.
            result = runtime.forecast()
            assert (result.source, result.index) == ("zeros", 0)
            assert "warmup" in result.reason
            assert not result.flows.any()
            # One tick: persistence (slot 1 has no climatology yet).
            runtime.ingest(live_tick(flows, 0))
            result = runtime.forecast()
            assert result.source == "persistence"
            assert np.array_equal(result.flows, flows[0])
            # A full day observed: climatology takes over.
            for index in range(1, SAMPLES_PER_DAY + 1):
                runtime.ingest(live_tick(flows, index))
            result = runtime.forecast()
            assert result.source == "historical_average"
            assert result.degraded

    def test_degraded_flag_routes_to_ladder_and_back(self):
        flows = make_flows(24)
        runtime = make_runtime(flows[:20])
        with runtime:
            assert runtime.forecast().source == "model"
            runtime.server.mark_degraded("maintenance window")
            result = runtime.forecast()
            assert result.source == "historical_average"
            assert result.reason == "maintenance window"
            runtime.server.clear_degraded()
            assert runtime.forecast().source == "model"

    def test_staleness_limit_degrades_with_telemetry(self):
        flows = make_flows(32)
        config = StreamConfig(staleness_limit=3)
        runtime = make_runtime(flows[:20], config=config)
        with runtime:
            # Warm-start does not age the weights.
            assert runtime.server.staleness_ticks == 0
            for index in range(20, 25):
                runtime.ingest(live_tick(flows, index))
            result = runtime.forecast()
            assert result.source != "model"
            assert result.reason.startswith("stale")
            assert result.staleness == 5
            assert runtime.server.snapshot()["staleness_ticks"] == 5


class TestFaultHandling:
    def test_nan_cells_are_masked_with_last_known_values(self):
        flows = make_flows(24)
        runtime = make_runtime(flows[:20])
        with runtime:
            frame = flows[20].copy()
            frame[0, 1, 1] = np.nan
            frame[1, 0, 0] = np.nan
            runtime.ingest(Tick(index=20, frame=frame))
            assert runtime.masked_cells == 2
            filled = runtime.cache.last_frame
            assert filled[0, 1, 1] == flows[19][0, 1, 1]
            assert filled[1, 0, 0] == flows[19][1, 0, 0]
            assert filled[0, 0, 0] == flows[20][0, 0, 0]

    def test_gap_advances_clock_and_flags_windows(self):
        flows = make_flows(32)
        config = StreamConfig(watermark=1)
        runtime = make_runtime(flows[:20], config=config)
        with runtime:
            # 20 never arrives; 21 forces the gap declaration.
            applied = runtime.ingest(live_tick(flows, 21))
            assert applied == [("gap", 20), ("tick", 21)]
            assert runtime.cache.gap_count == 1
            result = runtime.forecast()
            assert result.source == "model"
            assert result.index == 22
            # The filled interval 20 sits at lag 2, inside L_c = 2.
            assert result.imputed["closeness"] == 1

    def test_quarantined_tick_changes_nothing(self):
        flows = make_flows(24)
        runtime = make_runtime(flows[:20])
        with runtime:
            before = runtime.cache.count
            assert runtime.ingest(
                Tick(index=20, frame=np.full(SHAPE, np.inf))) == []
            assert runtime.cache.count == before
            assert runtime.ingestor.counts["quarantined"] == 1


class TestAdaptation:
    CONFIG = StreamConfig(
        history=64,
        adaptation=AdaptationConfig(step_budget=4, epochs=1,
                                    gate_factor=50.0, fresh_ticks=0))

    def _adaptive_runtime(self, tmp_path, flows_warm):
        return make_runtime(
            flows_warm, config=self.CONFIG, model_factory=make_model,
            checkpoint_dir=str(tmp_path))

    def test_swap_failure_leaves_server_answering(self, tmp_path,
                                                  monkeypatch):
        # Retraining succeeds but the checkpoint read during the hot
        # swap explodes: the failure is recorded, the server stays
        # degraded, and forecasts keep flowing from the ladder.
        flows = make_flows(32)
        runtime = self._adaptive_runtime(tmp_path, flows[:24])
        with runtime:
            import repro.serve.server as server_mod

            def broken_read(path):
                raise RuntimeError("checkpoint store unreachable")

            monkeypatch.setattr(server_mod, "read_weights", broken_read)
            assert runtime.adapt() is False
            assert runtime.retrains == 0
            assert any("hot swap failed" in f
                       for f in runtime.retrain_failures)
            assert "retrain failed" in runtime.server.degraded
            result = runtime.forecast()
            assert result.degraded and result.source == "historical_average"
            assert runtime.server.generation == 0
            # The store recovers: the retry swaps and serving resumes.
            monkeypatch.undo()
            assert runtime.adapt() is True
            assert runtime.retrains == 1
            assert runtime.server.degraded is None
            assert runtime.server.generation == 1
            assert runtime.forecast().source == "model"

    def test_swap_resets_staleness_clock(self, tmp_path):
        flows = make_flows(40)
        runtime = self._adaptive_runtime(tmp_path, flows[:24])
        with runtime:
            for index in range(24, 30):
                runtime.ingest(live_tick(flows, index))
            assert runtime.server.staleness_ticks == 6
            assert runtime.adapt() is True
            assert runtime.server.staleness_ticks == 0

    def test_retrain_divergence_is_contained(self, tmp_path, monkeypatch):
        # A diverging fit raises inside the trainer; adapt() must
        # convert it into a recorded failure, never a crash.
        flows = make_flows(32)
        runtime = self._adaptive_runtime(tmp_path, flows[:24])
        with runtime:
            import repro.stream.runtime as runtime_mod

            def exploding_retrain(*args, **kwargs):
                from repro.stream.adapt import AdaptationError
                raise AdaptationError("warm retrain diverged: boom")

            monkeypatch.setattr(runtime_mod, "warm_retrain",
                                exploding_retrain)
            assert runtime.adapt() is False
            assert any("diverged" in f for f in runtime.retrain_failures)
            assert runtime.forecast().degraded

    def test_missing_factory_is_a_recorded_failure(self, tmp_path):
        flows = make_flows(32)
        runtime = make_runtime(flows[:24], config=self.CONFIG)
        with runtime:
            assert runtime.adapt() is False
            assert any("model_factory" in f
                       for f in runtime.retrain_failures)

    def test_failure_log_is_bounded(self, tmp_path):
        from repro.stream.runtime import _MAX_FAILURE_RECORDS
        flows = make_flows(32)
        runtime = make_runtime(flows[:24], config=self.CONFIG)
        with runtime:
            for _ in range(_MAX_FAILURE_RECORDS + 5):
                runtime.adapt()
            assert len(runtime.retrain_failures) == _MAX_FAILURE_RECORDS


class TestLifecycle:
    def test_warm_start_after_ingest_raises(self):
        flows = make_flows(24)
        runtime = make_runtime(flows[:20])
        with runtime:
            runtime.ingest(live_tick(flows, 20))
            with pytest.raises(RuntimeError, match="warm_start"):
                runtime.warm_start(flows[:20])

    def test_replicas_rejected(self):
        flows = make_flows(12)
        with pytest.raises(ValueError, match="replicas"):
            StreamRuntime(make_model(), MinMaxScaler().fit(flows),
                          make_periodicity(), SHAPE, SAMPLES_PER_DAY,
                          serve_config=ServeConfig(replicas=2))

    def test_telemetry_is_json_able_and_complete(self):
        import json
        flows = make_flows(24)
        runtime = make_runtime(flows[:20])
        with runtime:
            runtime.ingest(live_tick(flows, 20))
            t = runtime.telemetry()
        json.dumps(t)
        for key in ("ingest", "drift", "drift_events", "serve", "cache",
                    "history_len", "masked_cells", "fallbacks",
                    "retrains", "retrain_failures"):
            assert key in t
        assert t["serve"]["staleness_ticks"] == 1
        assert t["cache"]["count"] == 21

    def test_history_window_is_bounded(self):
        flows = make_flows(40)
        config = StreamConfig(history=16)
        runtime = make_runtime(flows[:20], config=config)
        with runtime:
            for index in range(20, 30):
                runtime.ingest(live_tick(flows, index))
            assert len(runtime.history) == 16
