"""Rolling-window data preparation and adaptation config validation."""

import numpy as np
import pytest

from repro.data import MinMaxScaler, MultiPeriodicity
from repro.stream import AdaptationConfig, AdaptationError
from repro.stream.adapt import prepare_rolling_data

SHAPE = (2, 2, 2)


def make_setup(extra=24, seed=0):
    # min_index = max(2, 1*4, 1*8) = 8: small enough for fast tests.
    p = MultiPeriodicity(2, 1, 1, samples_per_day=4, trend_lag=8)
    rng = np.random.default_rng(seed)
    frames = rng.uniform(0, 10, size=(p.min_index + extra,) + SHAPE)
    scaler = MinMaxScaler((-0.9, 0.9)).fit(frames)
    return p, frames, scaler


class TestPrepareRollingData:
    def test_split_covers_every_target_once(self):
        p, frames, scaler = make_setup()
        data = prepare_rolling_data(frames, scaler, p, val_fraction=0.25)
        targets = sorted(np.concatenate([data.train.indices,
                                         data.val.indices]).tolist())
        assert targets == list(range(p.min_index, len(frames)))
        assert len(data.test) == 0

    def test_val_indices_are_stratified_not_tail_only(self):
        # After a drift the tail is where the new-regime samples live;
        # a tail-only val split would hide them all from training.
        p, frames, scaler = make_setup(extra=40)
        data = prepare_rolling_data(frames, scaler, p, val_fraction=0.25)
        val = np.sort(data.val.indices)
        span = len(frames) - p.min_index
        # Validation touches both the first and last third of the span.
        assert val[0] < p.min_index + span // 3
        assert val[-1] >= len(frames) - span // 3
        # ...and the newest target still trains (it is the regime).
        assert (len(frames) - 1) in data.train.indices or \
            (len(frames) - 1) in val

    def test_recency_boost_oversamples_newest_targets(self):
        p, frames, scaler = make_setup(extra=40)
        plain = prepare_rolling_data(frames, scaler, p)
        boosted = prepare_rolling_data(frames, scaler, p,
                                       recent_span=8, recent_boost=3)
        assert len(boosted.train) == len(plain.train) + 8 * 2
        newest = np.sort(plain.train.indices)[-8:]
        for index in newest:
            assert (boosted.train.indices == index).sum() == 3

    def test_windows_match_build_samples_on_the_scaled_frames(self):
        from repro.data import build_samples
        p, frames, scaler = make_setup()
        data = prepare_rolling_data(frames, scaler, p, val_fraction=0.25)
        ref = build_samples(scaler.transform(frames), p, data.val.indices)
        assert np.array_equal(data.val.closeness, ref.closeness)
        assert np.array_equal(data.val.target, ref.target)

    def test_short_history_raises_adaptation_error(self):
        p, frames, scaler = make_setup(extra=2)
        with pytest.raises(AdaptationError, match="too short"):
            prepare_rolling_data(frames, scaler, p)


class TestAdaptationConfig:
    def test_defaults_are_valid(self):
        AdaptationConfig()

    @pytest.mark.parametrize("kwargs,match", [
        (dict(step_budget=0), "step_budget"),
        (dict(val_fraction=0.0), "val_fraction"),
        (dict(val_fraction=1.0), "val_fraction"),
        (dict(gate_factor=0.0), "gate_factor"),
        (dict(fresh_ticks=-1), "fresh_ticks"),
        (dict(recent_span=-1), "recent_span"),
        (dict(recent_boost=0), "recent_boost"),
    ])
    def test_invalid_values_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            AdaptationConfig(**kwargs)
