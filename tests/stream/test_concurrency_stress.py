"""Drift-retrain hot swap re-run under sanitizer schedule perturbation.

The base :class:`TestAdaptation` suite drives ``adapt()`` from the
main thread with nobody else in flight.  Here the same warm-retrain +
hot-swap path runs while client threads hammer ``forecast()``, inside
``sanitizer.enabled(stress=True, seed=...)`` — every instrumented lock
acquisition gets a seeded sleep in front of it, widening the
swap/serve race deterministically.  The contract: every answer comes
from a pure generation or the fallback ladder (finite values, a known
source), the swap lands exactly once per adapt, and the sanitizer's
lock-order / fork-safety / unjoined-thread detectors stay silent.
"""

import os
import threading

import numpy as np
import pytest

from repro.inspect import sanitizer

from repro.stream import AdaptationConfig, StreamConfig

from tests.stream.test_runtime import (
    live_tick,
    make_flows,
    make_model,
    make_runtime,
)

# Same knobs as TestAdaptation in test_runtime (not imported — pytest
# would re-collect that class here).
ADAPT_CONFIG = StreamConfig(
    history=64,
    adaptation=AdaptationConfig(step_budget=4, epochs=1,
                                gate_factor=50.0, fresh_ticks=0))

pytestmark = pytest.mark.skipif(
    bool(os.environ.get("REPRO_TSAN")),
    reason="stress re-runs open their own sanitizer sessions")

_SOURCES = {"model", "historical_average", "persistence", "zeros"}


class TestDriftRetrainStressed:
    def test_hot_swap_under_forecast_fire(self, tmp_path):
        flows = make_flows(40)
        with sanitizer.enabled(stress=True, seed=321,
                               max_sleep_ms=0.5) as session:
            runtime = make_runtime(
                flows[:24], config=ADAPT_CONFIG,
                model_factory=make_model,
                checkpoint_dir=str(tmp_path))
            with runtime:
                for index in range(24, 30):
                    runtime.ingest(live_tick(flows, index))

                stop = threading.Event()
                bad = []

                def client():
                    while not stop.is_set():
                        result = runtime.forecast()
                        if (result.source not in _SOURCES
                                or not np.all(np.isfinite(result.flows))):
                            bad.append(result)
                            return

                threads = [threading.Thread(target=client,
                                            name=f"stream-client-{i}")
                           for i in range(4)]
                for t in threads:
                    t.start()
                try:
                    assert runtime.adapt() is True
                    assert runtime.server.generation == 1
                    runtime.ingest(live_tick(flows, 30))
                    assert runtime.adapt() is True
                    assert runtime.server.generation == 2
                finally:
                    stop.set()
                    for t in threads:
                        t.join(timeout=30.0)
                        assert not t.is_alive()
                assert runtime.retrains == 2
        assert not bad, f"invalid forecast under swap fire: {bad[0]!r}"
        assert not session.findings, session.format_text()
        assert session.report()["acquisitions"] > 0

    def test_stress_schedule_is_deterministic_per_seed(self):
        # The perturbation that widens the race is seeded: same seed +
        # same thread name -> the same sleep draws, so a failure under
        # stress is replayable.
        def draws(seed):
            with sanitizer.enabled(stress=True, seed=seed) as session:
                out = []

                def worker():
                    rng = session._rng()
                    out.extend(rng.random() for _ in range(8))

                t = sanitizer.create_thread(target=worker,
                                            name="stream-stress",
                                            daemon=True)
                t.start()
                t.join(timeout=5.0)
            return out

        assert draws(99) == draws(99)
        assert draws(99) != draws(100)
