"""Degradation-ladder forecasters: climatology and persistence."""

import numpy as np
import pytest

from repro.stream import StreamingHistoricalAverage, StreamingPersistence

SHAPE = (2, 2, 2)


class TestHistoricalAverage:
    def test_first_observation_seeds_its_slot(self):
        avg = StreamingHistoricalAverage(4, SHAPE, beta=0.9)
        avg.update(2, np.full(SHAPE, 5.0))
        assert avg.ready(2) and avg.ready(6)  # same slot, one day later
        assert not avg.ready(0)
        assert np.array_equal(avg.predict(6), np.full(SHAPE, 5.0))

    def test_slots_track_time_of_day_independently(self):
        avg = StreamingHistoricalAverage(2, SHAPE, beta=0.5)
        avg.update(0, np.full(SHAPE, 1.0))
        avg.update(1, np.full(SHAPE, 10.0))
        avg.update(2, np.full(SHAPE, 3.0))  # slot 0 again: 0.5*1 + 0.5*3
        assert np.allclose(avg.predict(0), 2.0)
        assert np.allclose(avg.predict(1), 10.0)

    def test_predict_unseen_slot_raises(self):
        avg = StreamingHistoricalAverage(4, SHAPE)
        with pytest.raises(ValueError, match="slot"):
            avg.predict(1)

    def test_prediction_is_a_copy(self):
        avg = StreamingHistoricalAverage(2, SHAPE)
        avg.update(0, np.ones(SHAPE))
        avg.predict(0)[:] = 99.0
        assert np.array_equal(avg.predict(0), np.ones(SHAPE))

    def test_validation(self):
        with pytest.raises(ValueError, match="samples_per_day"):
            StreamingHistoricalAverage(0, SHAPE)
        with pytest.raises(ValueError, match="beta"):
            StreamingHistoricalAverage(4, SHAPE, beta=1.0)


class TestPersistence:
    def test_predicts_last_observed_frame(self):
        p = StreamingPersistence(SHAPE)
        assert not p.ready
        p.update(np.full(SHAPE, 1.0))
        p.update(np.full(SHAPE, 7.0))
        assert p.ready
        assert np.array_equal(p.predict(), np.full(SHAPE, 7.0))

    def test_predict_before_any_update_raises(self):
        with pytest.raises(ValueError, match="no frame"):
            StreamingPersistence(SHAPE).predict()

    def test_prediction_does_not_alias_the_input(self):
        p = StreamingPersistence(SHAPE)
        source = np.ones(SHAPE)
        p.update(source)
        source[:] = 0.0
        assert np.array_equal(p.predict(), np.ones(SHAPE))
