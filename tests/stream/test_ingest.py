"""StreamIngestor: watermark reordering, gap declaration, quarantine."""

import numpy as np
import pytest

from repro.stream import StreamIngestor, Tick

SHAPE = (2, 2, 2)


def frame(value):
    return np.full(SHAPE, float(value))


def tick(index, value=None):
    return Tick(index=index, frame=frame(index if value is None else value))


def indices(events):
    return [(kind, i) for kind, i, _ in events]


class TestOrdering:
    def test_in_order_stream_emits_immediately(self):
        ing = StreamIngestor(SHAPE, watermark=4)
        for i in range(5):
            events = ing.offer(tick(i))
            assert indices(events) == [("tick", i)]
        assert ing.counts == {"emitted": 5, "gaps": 0, "quarantined": 0,
                              "reordered": 0}

    def test_out_of_order_within_watermark_is_reordered(self):
        ing = StreamIngestor(SHAPE, watermark=4)
        assert ing.offer(tick(1)) == []          # parked
        events = ing.offer(tick(0))              # releases both, in order
        assert indices(events) == [("tick", 0), ("tick", 1)]
        assert ing.counts["reordered"] == 1
        # The emitted frames are the right ones for each index.
        assert np.array_equal(events[0][2], frame(0))
        assert np.array_equal(events[1][2], frame(1))

    def test_gap_declared_at_watermark(self):
        # Index 0 never arrives; the arrival of index `watermark`
        # forces the hole to be declared so the stream can advance.
        ing = StreamIngestor(SHAPE, watermark=3)
        assert ing.offer(tick(1)) == []
        assert ing.offer(tick(2)) == []
        events = ing.offer(tick(3))
        assert indices(events) == [("gap", 0), ("tick", 1), ("tick", 2),
                                   ("tick", 3)]
        assert ing.counts["gaps"] == 1

    def test_pending_buffer_stays_below_watermark(self):
        ing = StreamIngestor(SHAPE, watermark=4)
        for i in (1, 2, 3, 4, 7, 9):
            ing.offer(tick(i))
            assert ing.pending_count < ing.watermark

    def test_flush_drains_pending_and_declares_interior_gaps(self):
        ing = StreamIngestor(SHAPE, watermark=10)
        ing.offer(tick(0))
        ing.offer(tick(2))          # parked: 1 is missing
        events = ing.flush()
        assert indices(events) == [("gap", 1), ("tick", 2)]
        assert ing.pending_count == 0

    def test_strictly_in_order_watermark_one(self):
        ing = StreamIngestor(SHAPE, watermark=1)
        events = ing.offer(tick(1))  # 0 missing -> gap immediately
        assert indices(events) == [("gap", 0), ("tick", 1)]

    def test_start_index_offsets_the_clock(self):
        ing = StreamIngestor(SHAPE, watermark=2, start_index=100)
        assert ing.next_index == 100
        assert indices(ing.offer(tick(100))) == [("tick", 100)]
        rec = ing.offer(tick(50))
        assert rec == [] and ing.quarantine[-1].reason == "late"


class TestQuarantine:
    def _refused(self, ing, t, reason):
        assert ing.offer(t) == []
        assert ing.quarantine[-1].reason == reason

    def test_late_tick(self):
        ing = StreamIngestor(SHAPE, watermark=2)
        ing.offer(tick(0))
        self._refused(ing, tick(0), "late")

    def test_duplicate_pending_tick(self):
        ing = StreamIngestor(SHAPE, watermark=4)
        ing.offer(tick(2))
        self._refused(ing, tick(2), "duplicate")

    def test_bad_shape(self):
        ing = StreamIngestor(SHAPE, watermark=2)
        self._refused(ing, Tick(index=0, frame=np.zeros((2, 3, 2))),
                      "bad_shape")

    def test_inf_cells_are_corrupt(self):
        bad = frame(1.0)
        bad[0, 0, 0] = np.inf
        ing = StreamIngestor(SHAPE, watermark=2)
        self._refused(ing, Tick(index=0, frame=bad), "corrupt")

    def test_all_nan_frame_is_corrupt(self):
        ing = StreamIngestor(SHAPE, watermark=2)
        self._refused(ing, Tick(index=0, frame=np.full(SHAPE, np.nan)),
                      "corrupt")

    def test_negative_flow_is_corrupt(self):
        bad = frame(1.0)
        bad[1, 0, 1] = -3.0
        ing = StreamIngestor(SHAPE, watermark=2)
        self._refused(ing, Tick(index=0, frame=bad), "corrupt")

    def test_negative_index(self):
        ing = StreamIngestor(SHAPE, watermark=2)
        self._refused(ing, tick(-1, value=0.0), "bad_index")

    def test_partial_nan_passes_through(self):
        # NaN cells are sensor dropout, not corruption: the frame is
        # usable and the runtime masks the cells.
        partial = frame(2.0)
        partial[0, 1, 1] = np.nan
        ing = StreamIngestor(SHAPE, watermark=2)
        events = ing.offer(Tick(index=0, frame=partial))
        assert indices(events) == [("tick", 0)]
        assert np.isnan(events[0][2][0, 1, 1])

    def test_quarantine_log_is_bounded(self):
        from repro.stream.ingest import _MAX_QUARANTINE_RECORDS
        ing = StreamIngestor(SHAPE, watermark=2)
        ing.offer(tick(0))
        for _ in range(_MAX_QUARANTINE_RECORDS + 50):
            ing.offer(tick(0))  # all late
        assert len(ing.quarantine) == _MAX_QUARANTINE_RECORDS
        assert ing.counts["quarantined"] == _MAX_QUARANTINE_RECORDS + 50

    def test_quarantined_tick_never_reaches_the_stream(self):
        ing = StreamIngestor(SHAPE, watermark=2)
        ing.offer(Tick(index=0, frame=np.full(SHAPE, np.inf)))
        events = ing.offer(tick(0, value=5.0))  # a clean resend works
        assert indices(events) == [("tick", 0)]
        assert np.array_equal(events[0][2], frame(5.0))


class TestTelemetry:
    def test_counters_and_audit_log(self):
        ing = StreamIngestor(SHAPE, watermark=3)
        ing.offer(tick(1))
        ing.offer(tick(0))
        ing.offer(tick(0))  # late
        t = ing.telemetry()
        assert t["next_index"] == 2
        assert t["counts"] == {"emitted": 2, "gaps": 0, "quarantined": 1,
                               "reordered": 1}
        assert t["quarantine"][0]["reason"] == "late"

    def test_invalid_watermark_rejected(self):
        with pytest.raises(ValueError, match="watermark"):
            StreamIngestor(SHAPE, watermark=0)
