"""SocketTickSource: the wire form of a tick stream.

A producer thread speaks the serve-layer framing over a real socket;
the consumer must see the exact tick sequence (frames bit-identical),
observe a clean EOF as end-of-stream, and turn a truncated frame into
a loud FrameError — a dead feed and a finished feed must never look
the same.
"""

import socket
import struct
import threading

import numpy as np
import pytest

from repro.serve.wire import FrameError
from repro.stream import SocketTickSource, StreamIngestor, Tick
from repro.stream.ticks import send_tick, tick_from_payload, tick_payload

SHAPE = (2, 2, 2)


def make_ticks(n, dtype=np.float32):
    rng = np.random.default_rng(5)
    # Non-negative: the ingestor quarantines negative flows as corrupt.
    return [Tick(index=i,
                 frame=rng.uniform(0.0, 100.0, SHAPE).astype(dtype),
                 meta={"feed": "test", "seq": i})
            for i in range(n)]


class Producer:
    """One-connection tick feed on an ephemeral TCP port."""

    def __init__(self, serve):
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.address = self._listener.getsockname()[:2]
        self._thread = threading.Thread(
            target=self._run, args=(serve,), daemon=True)
        self._thread.start()

    def _run(self, serve):
        conn, _peer = self._listener.accept()
        try:
            serve(conn)
        finally:
            conn.close()
            self._listener.close()

    def join(self):
        self._thread.join(timeout=30.0)
        assert not self._thread.is_alive()


class TestPayloadRoundTrip:
    def test_tick_survives_the_wire_form_bit_exactly(self):
        tick = make_ticks(1)[0]
        rebuilt = tick_from_payload(tick_payload(tick))
        assert rebuilt.index == tick.index
        assert rebuilt.meta == tick.meta
        assert rebuilt.frame.dtype == tick.frame.dtype
        assert np.array_equal(rebuilt.frame.view(np.uint8),
                              tick.frame.view(np.uint8))

    def test_missing_frame_or_wrong_shape_is_a_frame_error(self):
        with pytest.raises(FrameError, match="tick frame"):
            tick_from_payload({"index": 3})
        with pytest.raises(FrameError, match="tick frame"):
            tick_from_payload([1, 2, 3])
        with pytest.raises(FrameError, match="malformed array payload"):
            tick_from_payload({"index": 3, "frame": {"data": []}})


class TestSocketTickSource:
    def test_stream_arrives_in_order_and_bit_identical(self):
        ticks = make_ticks(7)
        producer = Producer(
            lambda conn: [send_tick(conn, tick) for tick in ticks])
        with SocketTickSource(producer.address, wait_ready_s=5.0) as source:
            received = list(source)  # clean EOF ends the iteration
            assert source.received == len(ticks)
        producer.join()
        assert [t.index for t in received] == [t.index for t in ticks]
        for got, sent in zip(received, ticks):
            assert np.array_equal(got.frame.view(np.uint8),
                                  sent.frame.view(np.uint8))
            assert got.meta == sent.meta

    def test_iteration_after_close_is_finished(self):
        ticks = make_ticks(2)
        producer = Producer(
            lambda conn: [send_tick(conn, tick) for tick in ticks])
        source = SocketTickSource(producer.address, wait_ready_s=5.0)
        assert next(source).index == 0
        source.close()
        with pytest.raises(StopIteration):
            next(source)
        producer.join()

    def test_truncated_frame_raises_instead_of_ending(self):
        def serve(conn):
            send_tick(conn, make_ticks(1)[0])
            conn.sendall(struct.pack(">I", 4096) + b"only-a-little")

        producer = Producer(serve)
        with SocketTickSource(producer.address, wait_ready_s=5.0) as source:
            assert next(source).index == 0
            with pytest.raises(FrameError, match="closed"):
                while True:
                    next(source)
        producer.join()

    def test_connect_to_nothing_fails_fast(self):
        sacrificial = socket.create_server(("127.0.0.1", 0))
        address = sacrificial.getsockname()[:2]
        sacrificial.close()
        with pytest.raises(OSError):
            SocketTickSource(address, wait_ready_s=0.0)

    def test_feeds_the_ingestor_like_an_in_memory_list(self):
        # The source is a drop-in tick iterator: out-of-order delivery
        # over the wire reorders inside the ingestor's watermark exactly
        # as it does for a list.
        ticks = make_ticks(4)
        shuffled = [ticks[1], ticks[0], ticks[2], ticks[3]]
        producer = Producer(
            lambda conn: [send_tick(conn, tick) for tick in shuffled])
        ingestor = StreamIngestor(SHAPE, watermark=4)
        events = []
        with SocketTickSource(producer.address, wait_ready_s=5.0) as source:
            for tick in source:
                events.extend(ingestor.offer(tick))
        events.extend(ingestor.flush())
        producer.join()
        assert [(kind, i) for kind, i, _ in events] == [
            ("tick", 0), ("tick", 1), ("tick", 2), ("tick", 3)]
        for _kind, i, frame in events:
            assert np.array_equal(frame, ticks[i].frame)
        assert ingestor.counts["reordered"] == 1
