"""Scenario construction: every disruption does what its name says."""

import numpy as np
import pytest

from repro.stream import simulate as sim


class TestScenarioMenu:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            sim.make_scenario("meteor")

    @pytest.mark.parametrize("name", sim.SCENARIOS)
    def test_shared_shape(self, name):
        s = sim.make_scenario(name, seed=0)
        grid, p = sim.stream_geometry()
        assert s.flows.shape == (s.train_end + grid.intervals_for_days(10),
                                 2, grid.height, grid.width)
        assert s.train_end == grid.intervals_for_days(16)
        assert s.periodicity.min_index <= s.train_end
        assert s.description

    def test_scenarios_are_reproducible(self):
        a = sim.make_scenario("late", seed=3)
        b = sim.make_scenario("late", seed=3)
        assert np.array_equal(a.flows, b.flows)
        assert [t.index for t in a.ticks] == [t.index for t in b.ticks]


class TestDisruptions:
    def test_clean_is_in_order_and_complete(self):
        s = sim.make_scenario("clean")
        assert [t.index for t in s.ticks] == list(range(s.train_end,
                                                        len(s.flows)))
        assert s.disruption_start == len(s.flows)
        assert all(np.isfinite(t.frame).all() for t in s.ticks)

    def test_late_shuffles_within_watermark_and_duplicates(self):
        s = sim.make_scenario("late")
        arrival = [t.index for t in s.ticks]
        assert sorted(set(arrival)) == list(range(s.train_end, len(s.flows)))
        assert len(arrival) == len(set(arrival)) + 4  # 4 duplicates
        # Displacement never exceeds the default watermark of 4.
        seen = {}
        for position, index in enumerate(arrival):
            seen.setdefault(index, position)
        order = sorted(seen, key=seen.get)
        for position, index in enumerate(order):
            assert abs(index - order[0] - position) < 4

    def test_dropout_injects_nan_cells_after_disruption(self):
        s = sim.make_scenario("dropout")
        nan_ticks = [t for t in s.ticks if np.isnan(t.frame).any()]
        assert nan_ticks
        assert all(t.index >= s.disruption_start for t in nan_ticks)
        # Truth flows stay clean: NaN is an observation fault.
        assert np.isfinite(s.flows).all()

    def test_corrupt_injects_inf_and_negative(self):
        s = sim.make_scenario("corrupt")
        assert any(np.isinf(t.frame).any() for t in s.ticks)
        assert any((t.frame[np.isfinite(t.frame)] < 0).any()
                   for t in s.ticks)

    def test_outage_drops_a_contiguous_run(self):
        s = sim.make_scenario("outage")
        present = {t.index for t in s.ticks}
        missing = sorted(set(range(s.train_end, len(s.flows))) - present)
        assert missing == list(range(s.disruption_start,
                                     s.disruption_start + 6))

    def test_level_shift_scales_post_disruption_flows(self):
        shifted = sim.make_scenario("level_shift")
        base = sim.make_scenario("clean")
        pre = slice(0, shifted.disruption_start)
        assert shifted.flows[pre].mean() == pytest.approx(
            base.flows[pre].mean(), rel=0.05)
        assert (shifted.flows[shifted.disruption_start:].mean()
                > 1.3 * base.flows[base.disruption_start - 80:].mean())

    def test_closure_kills_one_cell(self):
        s = sim.make_scenario("closure")
        base = sim.make_scenario("clean")
        window = slice(s.disruption_start, s.disruption_start + 16)
        # Only jitter noise survives in the closed cell (std 1.0).
        assert s.flows[window][:, :, 1, 2].mean() < 1.0
        assert (s.flows[window][:, :, 1, 2].mean()
                < 0.2 * base.flows[window][:, :, 1, 2].mean())

    def test_surge_scales_one_cell(self):
        s = sim.make_scenario("surge")
        base = sim.make_scenario("clean")
        window = slice(s.disruption_start, s.disruption_start + 16)
        assert (s.flows[window][:, :, 2, 1].mean()
                > 2.0 * base.flows[window][:, :, 2, 1].mean())


class TestEvaluation:
    def _fake_results(self, scenario, value):
        from repro.stream.runtime import ForecastResult
        return [
            (ForecastResult(index=i, flows=np.full(scenario.flows.shape[1:],
                                                   value), source="model"),
             scenario.flows[i])
            for i in range(scenario.train_end, len(scenario.flows))
        ]

    def test_segments_split_at_the_disruption(self):
        s = sim.make_scenario("level_shift")
        report = sim.evaluate_results(s, self._fake_results(s, 1.0),
                                      recovery_window=16)
        total = len(s.flows) - s.train_end
        post = len(s.flows) - s.disruption_start
        assert report["pre"]["ticks"] == total - post
        assert report["post"]["ticks"] == post
        assert report["recovery"]["ticks"] == 16
        assert report["sources"] == {"model": total}

    def test_nrmse_normalizes_by_truth_scale(self):
        # Doubling both prediction error and truth scale leaves nrmse
        # unchanged — the property that makes pre/post comparable
        # across a level shift.
        s = sim.make_scenario("clean")
        report = sim.evaluate_results(s, self._fake_results(s, 0.0))
        doubled = sim.StreamScenario(
            name=s.name, grid=s.grid, periodicity=s.periodicity,
            flows=s.flows * 2.0, train_end=s.train_end, ticks=s.ticks,
            disruption_start=s.disruption_start)
        report2 = sim.evaluate_results(doubled,
                                       self._fake_results(doubled, 0.0))
        assert report2["pre"]["rmse"] == pytest.approx(
            2.0 * report["pre"]["rmse"])
        assert report2["pre"]["nrmse"] == pytest.approx(
            report["pre"]["nrmse"])
