"""Shared fixtures for baseline tests."""

import pytest

from repro.baselines import BaselineConfig
from repro.data import load_dataset, prepare_forecast_data


@pytest.fixture(scope="session")
def tiny_data():
    """Tiny prepared dataset (cached per session)."""
    dataset = load_dataset("nyc-bike", scale="tiny")
    return prepare_forecast_data(dataset, max_train_samples=24, max_test_samples=8)


@pytest.fixture(scope="session")
def baseline_config(tiny_data):
    """Small-capacity baseline config matching the tiny dataset."""
    return BaselineConfig.for_data(tiny_data, hidden=16)


@pytest.fixture(scope="session")
def full_data():
    """Tiny dataset with the full (uncapped) test tail.

    The capped fixture strides the test set down to a handful of
    samples, which can land mostly on quiet night intervals where
    persistence is unbeatable; naive-vs-trained comparisons need the
    whole tail.
    """
    dataset = load_dataset("nyc-bike", scale="tiny")
    return prepare_forecast_data(dataset)


@pytest.fixture(scope="session")
def tiny_config(tiny_data):
    """Small MUSE-Net config for naive-vs-trained comparisons."""
    from repro.core import MuseConfig

    return MuseConfig.for_data(
        tiny_data, rep_channels=8, latent_interactive=16,
        res_blocks=1, plus_channels=2, decoder_hidden=32, gen_weight=0.05,
    )
