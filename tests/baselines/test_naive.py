"""Tests for the naive reference forecasters and sanity comparisons."""

import numpy as np
import pytest

from repro.baselines import HistoricalAverageForecaster, PersistenceForecaster
from repro.core import MUSENet
from repro.metrics import rmse
from repro.training import TrainConfig, Trainer


class TestPersistence:
    def test_predicts_last_closeness_frame(self, tiny_data):
        model = PersistenceForecaster().fit()
        prediction = model.predict(tiny_data.test)
        np.testing.assert_allclose(prediction, tiny_data.test.closeness[:, -1])

    def test_shape(self, tiny_data):
        prediction = PersistenceForecaster().predict(tiny_data.test)
        assert prediction.shape == tiny_data.test.target.shape

    def test_output_is_copy(self, tiny_data):
        prediction = PersistenceForecaster().predict(tiny_data.test)
        prediction[...] = 0.0
        assert tiny_data.test.closeness[:, -1].max() != 0.0


class TestHistoricalAverage:
    def test_predict_before_fit_raises(self, tiny_data):
        model = HistoricalAverageForecaster(tiny_data.grid)
        with pytest.raises(RuntimeError):
            model.predict(tiny_data.test)

    def test_constant_flows_recovered_exactly(self, tiny_data):
        # With constant targets, the average equals the constant.
        model = HistoricalAverageForecaster(tiny_data.grid)
        batch = tiny_data.train
        constant = batch.take(np.arange(len(batch)))
        constant.target = np.ones_like(constant.target) * 0.25
        model.fit(constant)
        prediction = model.predict(constant)
        np.testing.assert_allclose(prediction, 0.25)

    def test_beats_persistence_on_periodic_data(self, full_data):
        # Traffic is strongly daily-periodic, so time-of-day averages
        # should beat naive persistence over the full test tail.
        historical = HistoricalAverageForecaster(full_data.grid).fit(full_data.train)
        persistence = PersistenceForecaster()
        truth = full_data.test.target
        rmse_hist = rmse(historical.predict(full_data.test), truth)
        rmse_pers = rmse(persistence.predict(full_data.test), truth)
        assert rmse_hist < rmse_pers

    def test_unseen_key_falls_back_to_global_mean(self, tiny_data):
        model = HistoricalAverageForecaster(tiny_data.grid)
        small = tiny_data.train.take(range(4))  # few keys covered
        model.fit(small)
        prediction = model.predict(tiny_data.test)
        assert np.all(np.isfinite(prediction))


class TestTrainedBeatsNaive:
    def test_muse_beats_persistence(self, full_data, tiny_config):
        trainer = Trainer(MUSENet(tiny_config), TrainConfig(epochs=8, lr=2e-3))
        trainer.fit(full_data)
        truth = full_data.test.target
        model_rmse = rmse(trainer.predict_scaled(full_data.test), truth)
        naive_rmse = rmse(PersistenceForecaster().predict(full_data.test), truth)
        assert model_rmse < naive_rmse
