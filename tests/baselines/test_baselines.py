"""Contract and behaviour tests for all 11 baselines."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINE_NAMES,
    BaselineConfig,
    BaselineForecaster,
    make_baseline,
)
from repro.baselines.stnorm import spatial_norm, temporal_norm
from repro.optim import Adam, clip_grad_norm
from repro.tensor import Tensor


class TestRegistry:
    def test_all_eleven_present(self):
        assert len(BASELINE_NAMES) == 11

    def test_paper_names(self):
        for name in ("RNN", "Seq2Seq", "ASTGCN", "CONVGCN", "GMAN", "STGNN",
                     "DMSTGCN", "ST-Norm", "STGSP", "DeepSTN+", "ST-SSL"):
            assert name in BASELINE_NAMES

    def test_unknown_name_raises(self, baseline_config):
        with pytest.raises(ValueError):
            make_baseline("ARIMA", baseline_config)


class TestConfig:
    def test_derived_quantities(self):
        config = BaselineConfig(len_closeness=3, len_period=4, len_trend=4,
                                height=10, width=20)
        assert config.total_length == 11
        assert config.num_regions == 200
        assert config.frame_features == 400

    def test_for_data(self, tiny_data, baseline_config):
        assert baseline_config.height == tiny_data.grid.height
        assert baseline_config.len_closeness == tiny_data.periodicity.len_closeness


@pytest.mark.parametrize("name", BASELINE_NAMES)
class TestEveryBaseline:
    def test_prediction_shape_and_range(self, name, tiny_data, baseline_config):
        model = make_baseline(name, baseline_config)
        prediction = model.predict(tiny_data.test)
        assert prediction.shape == tiny_data.test.target.shape
        assert np.all(np.abs(prediction) <= 1.0)  # all heads end in tanh

    def test_one_training_step_updates_all_parameters(self, name, tiny_data,
                                                      baseline_config):
        model = make_baseline(name, baseline_config)
        model.train()
        optimizer = Adam(model.parameters(), lr=1e-3)
        batch = tiny_data.train.take(range(6))
        breakdown, outputs = model.training_loss(batch, rng=np.random.default_rng(0))
        assert np.isfinite(breakdown.total.item())
        breakdown.total.backward()
        grads = [p.grad is not None for p in model.parameters()]
        # Every parameter participates in the loss graph.
        assert all(grads), f"{name}: {sum(not g for g in grads)} parameters without grad"
        optimizer.step()

    def test_loss_decreases_over_steps(self, name, tiny_data, baseline_config):
        model = make_baseline(name, baseline_config)
        model.train()
        optimizer = Adam(model.parameters(), lr=2e-3)
        rng = np.random.default_rng(0)
        batch = tiny_data.train.take(range(12))
        first = last = None
        for _ in range(6):
            optimizer.zero_grad()
            breakdown, _ = model.training_loss(batch, rng=rng)
            breakdown.total.backward()
            clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()
            if first is None:
                first = breakdown.reg.item()
            last = breakdown.reg.item()
        assert last < first, f"{name} did not learn: {first} -> {last}"

    def test_deterministic_prediction(self, name, tiny_data, baseline_config):
        model = make_baseline(name, baseline_config)
        a = model.predict(tiny_data.test)
        b = model.predict(tiny_data.test)
        np.testing.assert_allclose(a, b)


class TestSTNormComponents:
    def test_temporal_norm_zero_mean_over_time(self):
        frames = Tensor(np.random.default_rng(0).uniform(0, 5, (2, 6, 2, 3, 3)))
        out = temporal_norm(frames)
        np.testing.assert_allclose(out.data.mean(axis=1), 0.0, atol=1e-7)

    def test_spatial_norm_zero_mean_over_space(self):
        frames = Tensor(np.random.default_rng(0).uniform(0, 5, (2, 6, 2, 3, 3)))
        out = spatial_norm(frames)
        np.testing.assert_allclose(out.data.mean(axis=(3, 4)), 0.0, atol=1e-7)

    def test_constant_input_is_finite(self):
        frames = Tensor(np.full((1, 4, 2, 3, 3), 7.0))
        assert np.all(np.isfinite(temporal_norm(frames).data))
        assert np.all(np.isfinite(spatial_norm(frames).data))


class TestSTSSL:
    def test_auxiliary_loss_active_in_training(self, tiny_data, baseline_config):
        model = make_baseline("ST-SSL", baseline_config)
        model.train()
        batch = tiny_data.train.take(range(6))
        breakdown, _ = model.training_loss(batch, rng=np.random.default_rng(0))
        assert breakdown.push.item() != 0.0  # aux loss recorded in `push`

    def test_auxiliary_loss_disabled_in_eval(self, tiny_data, baseline_config):
        model = make_baseline("ST-SSL", baseline_config)
        model.eval()
        batch = tiny_data.train.take(range(6))
        breakdown, _ = model.training_loss(batch, rng=np.random.default_rng(0))
        assert breakdown.push.item() == 0.0


class TestBaseClass:
    def test_forward_not_implemented(self, baseline_config):
        with pytest.raises(NotImplementedError):
            BaselineForecaster(baseline_config)(None, None, None)

    def test_frames_order_is_chronological(self, baseline_config, tiny_data):
        model = make_baseline("RNN", baseline_config)
        batch = tiny_data.train.take(range(2))
        frames = model._frames((batch.closeness, batch.period, batch.trend))
        lt = baseline_config.len_trend
        lp = baseline_config.len_period
        np.testing.assert_allclose(frames.data[:, :lt], batch.trend)
        np.testing.assert_allclose(frames.data[:, lt:lt + lp], batch.period)
        np.testing.assert_allclose(frames.data[:, lt + lp:], batch.closeness)
