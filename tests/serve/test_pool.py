"""ReplicaPool: forked replicas over one shared parameter buffer.

Fork-heavy tests are consolidated so each pool lifecycle is paid once.
"""

import numpy as np
import pytest

from repro.serve import ForecastServer, ReplicaPool, ServeConfig
from repro.tensor import no_grad

from tests.serve.conftest import TinyForecaster


def offline(model, batch):
    with no_grad():
        return np.asarray(model.predict(batch))


class TestReplicaPool:
    def test_predict_install_and_close_lifecycle(self, tiny_data):
        test = tiny_data.test  # 13 samples
        model = TinyForecaster(tiny_data, seed=0)
        other = TinyForecaster(tiny_data, seed=9)
        expected_a = offline(TinyForecaster(tiny_data, seed=0), test)
        expected_b = offline(TinyForecaster(tiny_data, seed=9), test)

        with ReplicaPool(model, test, replicas=2, max_batch=8) as pool:
            # Parameters now alias the shared flat buffer.
            assert all(p.data.base is not None for p in model.parameters())

            # Sharded forward == single-process forward, generation 0.
            rows, generation = pool.predict(test.slice(0, 8))
            assert generation == 0
            assert np.allclose(rows, expected_a[:8], atol=1e-12)

            # Oversized request (13 > max_batch 8): served in chunks
            # under one lock hold — still row-aligned, one generation.
            rows, generation = pool.predict(test)
            assert generation == 0
            assert rows.shape == expected_a.shape
            assert np.allclose(rows, expected_a, atol=1e-12)

            # Hot swap: exactly one generation bump per install, and
            # the weights land in the *shared* buffer (no rebinding).
            before = [id(p.data) for p in model.parameters()]
            assert pool.install(other.state_dict()) == 1
            assert pool.generation == 1
            assert [id(p.data) for p in model.parameters()] == before
            assert all(p.data.base is not None for p in model.parameters())

            rows, generation = pool.predict(test)
            assert generation == 1
            assert np.allclose(rows, expected_b, atol=1e-12)

        # close() re-privatises the weights: the model survives the
        # pool and still computes with the last installed generation.
        assert all(p.data.base is None for p in model.parameters())
        assert np.allclose(offline(model, test), expected_b, atol=1e-12)

    def test_predict_rejects_empty_and_closed(self, tiny_data):
        model = TinyForecaster(tiny_data)
        pool = ReplicaPool(model, tiny_data.test, replicas=1, max_batch=4)
        pool.start()
        try:
            with pytest.raises(ValueError, match="empty"):
                pool.predict(tiny_data.test.slice(0, 0))
        finally:
            pool.close()
        with pytest.raises(RuntimeError, match="not running"):
            pool.predict(tiny_data.test.slice(0, 1))

    def test_invalid_construction(self, tiny_data):
        model = TinyForecaster(tiny_data)
        with pytest.raises(ValueError, match="replicas"):
            ReplicaPool(model, tiny_data.test, replicas=0, max_batch=4)
        with pytest.raises(ValueError, match="max_batch"):
            ReplicaPool(model, tiny_data.test, replicas=1, max_batch=0)


class TestServerWithReplicas:
    def test_served_equals_offline_through_forked_replicas(self, tiny_data):
        test = tiny_data.test
        model = TinyForecaster(tiny_data, seed=0)
        expected = offline(TinyForecaster(tiny_data, seed=0), test)
        config = ServeConfig(max_batch=8, max_wait_ms=2.0, replicas=2)
        with ForecastServer(model, config, template=test) as server:
            served = server.forecast(test)
            snap = server.snapshot()
        assert np.allclose(served, expected, atol=1e-12)
        assert snap["replicas"] == 2
        assert snap["shared_mib"] > 0
        assert len(snap["blas_modes"]) == 2
