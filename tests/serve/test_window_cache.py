"""WindowCache: incremental assembly must be bit-identical to build_samples."""

import numpy as np
import pytest

from repro.data import MultiPeriodicity, build_samples
from repro.serve import WindowCache

FRAME_SHAPE = (2, 3, 4)


def make_stream(ticks, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    return rng.uniform(-1, 1, (ticks,) + FRAME_SHAPE).astype(dtype)


def make_periodicity():
    """Short lags so the stream crosses many period/trend boundaries."""
    return MultiPeriodicity(len_closeness=3, len_period=2, len_trend=2,
                            samples_per_day=8, trend_lag=24)


class TestWindowCache:
    def test_bit_identical_to_build_samples_at_every_index(self):
        # Walk the whole stream: before observing tick i, the cache's
        # sample for target i must equal build_samples(flows, p, [i])
        # bit-for-bit.  min_index=48, period_lag=8, trend_lag=24, so
        # the walk crosses dozens of period boundaries and several
        # trend boundaries.
        p = make_periodicity()
        flows = make_stream(p.min_index + 60)
        cache = WindowCache(p, FRAME_SHAPE)
        checked = 0
        for i in range(len(flows)):
            assert cache.ready == (i >= p.min_index)
            if cache.ready:
                sample = cache.sample()
                ref = build_samples(flows, p, [i])
                assert np.array_equal(sample.closeness, ref.closeness)
                assert np.array_equal(sample.period, ref.period)
                assert np.array_equal(sample.trend, ref.trend)
                assert sample.indices[0] == ref.indices[0] == i
                checked += 1
            cache.push(flows[i])
        assert checked == 60

    def test_extend_warmup_matches_per_tick_pushes(self):
        p = make_periodicity()
        flows = make_stream(p.min_index + 5, seed=3)
        bulk = WindowCache(p, FRAME_SHAPE)
        assert bulk.extend(flows) == len(flows)
        ticked = WindowCache(p, FRAME_SHAPE)
        for frame in flows:
            ticked.push(frame)
        a, b = bulk.sample(), ticked.sample()
        assert np.array_equal(a.closeness, b.closeness)
        assert np.array_equal(a.period, b.period)
        assert np.array_equal(a.trend, b.trend)

    def test_sample_before_warmup_raises(self):
        p = make_periodicity()
        cache = WindowCache(p, FRAME_SHAPE)
        cache.push(np.zeros(FRAME_SHAPE))
        with pytest.raises(ValueError, match="not ready"):
            cache.sample()

    def test_sample_arrays_are_copies(self):
        # A caller may hold a sample across later pushes: the arrays
        # must not alias the ring or the rolling closeness tensor.
        p = make_periodicity()
        flows = make_stream(p.min_index + 10, seed=5)
        cache = WindowCache(p, FRAME_SHAPE)
        cache.extend(flows[:p.min_index])
        held = cache.sample()
        ref = build_samples(flows, p, [p.min_index])
        cache.extend(flows[p.min_index:])
        assert np.array_equal(held.closeness, ref.closeness)
        assert np.array_equal(held.period, ref.period)
        assert np.array_equal(held.trend, ref.trend)

    def test_next_index_tracks_ticks(self):
        p = make_periodicity()
        cache = WindowCache(p, FRAME_SHAPE)
        assert cache.next_index == 0
        cache.extend(make_stream(7))
        assert cache.next_index == cache.count == 7

    def test_dtype_and_target_placeholder(self):
        p = make_periodicity()
        flows = make_stream(p.min_index, dtype=np.float32)
        cache = WindowCache(p, FRAME_SHAPE, dtype=np.float32)
        cache.extend(flows)
        sample = cache.sample()
        assert sample.closeness.dtype == np.float32
        assert sample.target.shape == (1,) + FRAME_SHAPE
        assert not sample.target.any()

    def test_rejects_wrong_frame_shape(self):
        cache = WindowCache(make_periodicity(), FRAME_SHAPE)
        with pytest.raises(ValueError, match="frame shape"):
            cache.push(np.zeros((2, 4, 3)))


class TestGapContract:
    """push_gap: carry-forward fill + imputation flags (PR 8).

    The seed behavior simply never advanced the clock on a missing
    interval, silently shifting every later period/trend lag off its
    calendar alignment.  The contract now: a gap advances the clock,
    fills with the last observed frame, and flags the slot so
    imputed_counts() reports how much of each sub-series is filled.
    """

    def _filled_reference(self, flows, gaps):
        """The history build_samples sees if gaps are carry-forward filled."""
        filled = np.array(flows, copy=True)
        for i in sorted(gaps):
            filled[i] = filled[i - 1] if i > 0 else 0.0
        return filled

    def test_gap_windows_bit_identical_across_period_and_trend(self):
        # Gaps placed so the fills traverse *every* sub-series as the
        # stream advances: each gap sits exactly one period or trend
        # lag behind some later target.  min_index=48, period_lag=8,
        # trend_lag=24.
        p = make_periodicity()
        flows = make_stream(p.min_index + 60, seed=9)
        gaps = {p.min_index + 5, p.min_index + 6, p.min_index + 30}
        filled = self._filled_reference(flows, gaps)
        cache = WindowCache(p, FRAME_SHAPE)
        for i in range(len(flows)):
            if cache.ready:
                sample = cache.sample()
                ref = build_samples(filled, p, [i])
                assert np.array_equal(sample.closeness, ref.closeness), i
                assert np.array_equal(sample.period, ref.period), i
                assert np.array_equal(sample.trend, ref.trend), i
            if i in gaps:
                cache.push_gap()
            else:
                cache.push(flows[i])
        assert cache.gap_count == len(gaps)

    def test_gap_advances_clock_and_keeps_alignment(self):
        # The regression pinned: after a gap, next_index must advance
        # exactly like an observed tick, or every later lag shifts.
        p = make_periodicity()
        cache = WindowCache(p, FRAME_SHAPE)
        cache.extend(make_stream(10, seed=1))
        assert cache.next_index == 10
        cache.push_gap()
        assert cache.next_index == 11
        assert cache.count == 11

    def test_imputed_counts_traverse_subseries(self):
        # One gap, then clean ticks: the imputation flag must appear in
        # closeness immediately, then surface in the period window when
        # the gap is exactly period_lag behind the target, and in the
        # trend window at trend_lag behind — and be zero elsewhere.
        p = make_periodicity()  # L_c=3, L_p=2 @ lag 8, L_t=2 @ lag 24
        flows = make_stream(p.min_index + 50, seed=2)
        cache = WindowCache(p, FRAME_SHAPE)
        cache.extend(flows[:p.min_index])
        gap_at = p.min_index
        cache.push_gap()
        for _ in range(48):
            cache.push(flows[cache.next_index])
            counts = cache.imputed_counts()
            lag = cache.next_index - gap_at  # gap's lag behind the target
            assert counts["closeness"] == (1 if lag <= 3 else 0), lag
            assert counts["period"] == (1 if lag in (8, 16) else 0), lag
            assert counts["trend"] == (1 if lag in (24, 48) else 0), lag

    def test_gap_before_first_observation_fills_zeros(self):
        p = make_periodicity()
        cache = WindowCache(p, FRAME_SHAPE, dtype=np.float64)
        cache.push_gap()
        assert cache.count == 1
        assert np.array_equal(cache.last_frame, np.zeros(FRAME_SHAPE))

    def test_clean_stream_reports_zero_imputed(self):
        p = make_periodicity()
        cache = WindowCache(p, FRAME_SHAPE)
        cache.extend(make_stream(p.min_index, seed=4))
        assert cache.imputed_counts() == {"closeness": 0, "period": 0,
                                          "trend": 0}
        assert cache.gap_count == 0

    def test_imputed_counts_before_warmup_raises(self):
        cache = WindowCache(make_periodicity(), FRAME_SHAPE)
        with pytest.raises(ValueError, match="not ready"):
            cache.imputed_counts()
