"""WindowCache: incremental assembly must be bit-identical to build_samples."""

import numpy as np
import pytest

from repro.data import MultiPeriodicity, build_samples
from repro.serve import WindowCache

FRAME_SHAPE = (2, 3, 4)


def make_stream(ticks, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    return rng.uniform(-1, 1, (ticks,) + FRAME_SHAPE).astype(dtype)


def make_periodicity():
    """Short lags so the stream crosses many period/trend boundaries."""
    return MultiPeriodicity(len_closeness=3, len_period=2, len_trend=2,
                            samples_per_day=8, trend_lag=24)


class TestWindowCache:
    def test_bit_identical_to_build_samples_at_every_index(self):
        # Walk the whole stream: before observing tick i, the cache's
        # sample for target i must equal build_samples(flows, p, [i])
        # bit-for-bit.  min_index=48, period_lag=8, trend_lag=24, so
        # the walk crosses dozens of period boundaries and several
        # trend boundaries.
        p = make_periodicity()
        flows = make_stream(p.min_index + 60)
        cache = WindowCache(p, FRAME_SHAPE)
        checked = 0
        for i in range(len(flows)):
            assert cache.ready == (i >= p.min_index)
            if cache.ready:
                sample = cache.sample()
                ref = build_samples(flows, p, [i])
                assert np.array_equal(sample.closeness, ref.closeness)
                assert np.array_equal(sample.period, ref.period)
                assert np.array_equal(sample.trend, ref.trend)
                assert sample.indices[0] == ref.indices[0] == i
                checked += 1
            cache.push(flows[i])
        assert checked == 60

    def test_extend_warmup_matches_per_tick_pushes(self):
        p = make_periodicity()
        flows = make_stream(p.min_index + 5, seed=3)
        bulk = WindowCache(p, FRAME_SHAPE)
        assert bulk.extend(flows) == len(flows)
        ticked = WindowCache(p, FRAME_SHAPE)
        for frame in flows:
            ticked.push(frame)
        a, b = bulk.sample(), ticked.sample()
        assert np.array_equal(a.closeness, b.closeness)
        assert np.array_equal(a.period, b.period)
        assert np.array_equal(a.trend, b.trend)

    def test_sample_before_warmup_raises(self):
        p = make_periodicity()
        cache = WindowCache(p, FRAME_SHAPE)
        cache.push(np.zeros(FRAME_SHAPE))
        with pytest.raises(ValueError, match="not ready"):
            cache.sample()

    def test_sample_arrays_are_copies(self):
        # A caller may hold a sample across later pushes: the arrays
        # must not alias the ring or the rolling closeness tensor.
        p = make_periodicity()
        flows = make_stream(p.min_index + 10, seed=5)
        cache = WindowCache(p, FRAME_SHAPE)
        cache.extend(flows[:p.min_index])
        held = cache.sample()
        ref = build_samples(flows, p, [p.min_index])
        cache.extend(flows[p.min_index:])
        assert np.array_equal(held.closeness, ref.closeness)
        assert np.array_equal(held.period, ref.period)
        assert np.array_equal(held.trend, ref.trend)

    def test_next_index_tracks_ticks(self):
        p = make_periodicity()
        cache = WindowCache(p, FRAME_SHAPE)
        assert cache.next_index == 0
        cache.extend(make_stream(7))
        assert cache.next_index == cache.count == 7

    def test_dtype_and_target_placeholder(self):
        p = make_periodicity()
        flows = make_stream(p.min_index, dtype=np.float32)
        cache = WindowCache(p, FRAME_SHAPE, dtype=np.float32)
        cache.extend(flows)
        sample = cache.sample()
        assert sample.closeness.dtype == np.float32
        assert sample.target.shape == (1,) + FRAME_SHAPE
        assert not sample.target.any()

    def test_rejects_wrong_frame_shape(self):
        cache = WindowCache(make_periodicity(), FRAME_SHAPE)
        with pytest.raises(ValueError, match="frame shape"):
            cache.push(np.zeros((2, 4, 3)))
