"""AutoScaler policy, ReplicaPool.scale_to, and server wiring."""

import multiprocessing
import time

import numpy as np
import pytest

from repro.serve import (AutoScaleConfig, AutoScaler, ForecastServer,
                         ReplicaPool, ServeConfig)
from repro.tensor import no_grad

from tests.serve.conftest import TinyForecaster


def offline(model, batch):
    with no_grad():
        return np.asarray(model.predict(batch))


class StubServer:
    """Fabricated telemetry for driving the policy synchronously."""

    def __init__(self, replicas=1):
        self.queue_depth = 0
        self.wait_ms = None
        self.replica_count = replicas
        self.scale_calls = []

    def recent_queue_wait_ms(self):
        return self.wait_ms

    def scale_replicas(self, replicas):
        self.scale_calls.append(replicas)
        self.replica_count = replicas
        return replicas


def make_scaler(stub, **overrides):
    knobs = dict(min_replicas=1, max_replicas=4, high_queue_depth=8,
                 high_wait_ms=50.0, low_wait_ms=5.0, patience=2,
                 cooldown_s=0.0)
    knobs.update(overrides)
    return AutoScaler(stub, AutoScaleConfig(**knobs))


class TestAutoScaleConfig:
    @pytest.mark.parametrize("kwargs, match", [
        (dict(min_replicas=0), "min_replicas"),
        (dict(min_replicas=3, max_replicas=2), "max_replicas"),
        (dict(high_queue_depth=0), "high_queue_depth"),
        (dict(low_wait_ms=-1.0), "low_wait_ms"),
        (dict(high_wait_ms=5.0, low_wait_ms=5.0), "low_wait_ms"),
        (dict(patience=0), "patience"),
        (dict(cooldown_s=-1.0), "cooldown_s"),
        (dict(interval_s=0.0), "interval_s"),
    ])
    def test_rejects_bad_knobs(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            AutoScaleConfig(**kwargs)

    def test_as_dict_round_trips_the_knobs(self):
        config = AutoScaleConfig(2, 6, patience=5, cooldown_s=3.0)
        rebuilt = AutoScaleConfig(**config.as_dict())
        assert rebuilt.as_dict() == config.as_dict()


class TestPolicy:
    def test_scale_up_needs_patience_consecutive_pressure(self):
        stub = StubServer(replicas=1)
        scaler = make_scaler(stub)
        stub.queue_depth = 20
        assert scaler.step(now=0.0) == 0  # first pressured sample: wait
        assert scaler.step(now=1.0) == +1
        assert stub.scale_calls == [2]

    def test_a_calm_sample_resets_the_pressure_streak(self):
        stub = StubServer(replicas=1)
        scaler = make_scaler(stub)
        stub.queue_depth = 20
        scaler.step(now=0.0)
        stub.queue_depth = 1  # neither pressured nor slack (depth != 0)
        scaler.step(now=1.0)
        stub.queue_depth = 20
        assert scaler.step(now=2.0) == 0  # streak restarted from zero
        assert stub.scale_calls == []

    def test_queue_wait_alone_is_pressure(self):
        stub = StubServer(replicas=1)
        scaler = make_scaler(stub, patience=1)
        stub.wait_ms = 80.0  # depth stays 0
        assert scaler.step(now=0.0) == +1
        assert stub.replica_count == 2

    def test_slack_scales_down_to_min_and_stops(self):
        stub = StubServer(replicas=3)
        scaler = make_scaler(stub, patience=1)
        stub.wait_ms = 1.0
        assert scaler.step(now=0.0) == -1
        assert scaler.step(now=1.0) == -1
        assert stub.replica_count == 1
        assert scaler.step(now=2.0) == 0  # already at min_replicas
        assert stub.scale_calls == [2, 1]

    def test_pressure_at_max_replicas_does_nothing(self):
        stub = StubServer(replicas=4)
        scaler = make_scaler(stub, patience=1)
        stub.queue_depth = 100
        assert scaler.step(now=0.0) == 0
        assert stub.scale_calls == []

    def test_cooldown_blocks_consecutive_scale_events(self):
        stub = StubServer(replicas=1)
        scaler = make_scaler(stub, patience=1, cooldown_s=10.0)
        stub.queue_depth = 20
        assert scaler.step(now=0.0) == +1
        assert scaler.step(now=5.0) == 0   # inside the cooldown window
        assert scaler.step(now=10.0) == +1  # window over
        assert stub.scale_calls == [2, 3]

    def test_events_record_the_triggering_signals(self):
        stub = StubServer(replicas=1)
        scaler = make_scaler(stub, patience=1)
        stub.queue_depth = 20
        stub.wait_ms = 75.0
        scaler.step(now=0.0)
        stub.queue_depth = 0
        stub.wait_ms = 1.0
        scaler.step(now=1.0)
        snap = scaler.snapshot()
        assert snap["scale_ups"] == 1 and snap["scale_downs"] == 1
        assert snap["observations"] == 2
        up, down = snap["events"]
        assert up == {"direction": "up", "from": 1, "to": 2,
                      "queue_depth": 20, "recent_wait_ms": 75.0}
        assert down["direction"] == "down"
        assert (down["from"], down["to"]) == (2, 1)

    def test_background_driver_steps_and_closes_cleanly(self):
        stub = StubServer(replicas=1)
        scaler = AutoScaler(stub, AutoScaleConfig(
            1, 4, patience=1, cooldown_s=0.0, interval_s=0.005))
        stub.queue_depth = 20
        with scaler:
            deadline = time.monotonic() + 10.0
            while not stub.scale_calls and time.monotonic() < deadline:
                time.sleep(0.01)
        assert stub.scale_calls and stub.scale_calls[0] == 2
        scaler.close()  # idempotent

    def test_double_start_rejected(self):
        scaler = make_scaler(StubServer())
        with scaler:
            with pytest.raises(RuntimeError, match="already started"):
                scaler.start()


class TestServeConfigAutoscale:
    def test_requires_both_bounds(self):
        with pytest.raises(ValueError, match="both min_replicas"):
            ServeConfig(replicas=1, min_replicas=1)
        with pytest.raises(ValueError, match="both min_replicas"):
            ServeConfig(replicas=1, max_replicas=2)

    def test_requires_a_replica_pool(self):
        with pytest.raises(ValueError, match="replica pool"):
            ServeConfig(min_replicas=1, max_replicas=2)

    def test_starting_size_must_sit_inside_the_bounds(self):
        with pytest.raises(ValueError, match="min_replicas <= replicas"):
            ServeConfig(replicas=4, min_replicas=1, max_replicas=2)
        ServeConfig(replicas=2, min_replicas=1, max_replicas=3)  # valid


class TestPoolScaling:
    def test_scale_to_lifecycle(self, tiny_data):
        """Grow and shrink one pool; forecasts stay correct throughout.

        Different replica counts shard the batch into different GEMM
        shapes, so cross-count comparisons are float-tolerance (BLAS
        reduction order), while returning to the original count is
        bitwise.
        """
        test = tiny_data.test
        model = TinyForecaster(tiny_data, seed=0)
        expected = offline(TinyForecaster(tiny_data, seed=0), test)
        with ReplicaPool(model, test, replicas=1, max_batch=16) as pool:
            base, _gen = pool.predict(test)
            assert np.allclose(base, expected, atol=1e-12)

            assert pool.scale_to(3) == 3
            assert pool.size == 3
            grown, _gen = pool.predict(test)
            assert np.allclose(grown, expected, atol=1e-12)

            # scale_to is idempotent at the current size.
            assert pool.scale_to(3) == 3
            assert pool.size == 3

            assert pool.scale_to(1) == 1
            assert pool.size == 1
            shrunk, _gen = pool.predict(test)
            assert np.array_equal(shrunk, base)  # same shard shape: bitwise

            with pytest.raises(ValueError, match="replicas"):
                pool.scale_to(0)
        # No orphan replica processes after close().
        assert not multiprocessing.active_children()
        with pytest.raises(RuntimeError, match="not running"):
            pool.scale_to(2)

    def test_server_autoscaler_wiring(self, tiny_data):
        test = tiny_data.test
        model = TinyForecaster(tiny_data, seed=0)
        expected = offline(TinyForecaster(tiny_data, seed=0), test)
        config = ServeConfig(max_batch=16, max_wait_ms=2.0, replicas=1,
                             min_replicas=1, max_replicas=3)
        with ForecastServer(model, config, template=test) as server:
            assert server.autoscaler is not None
            assert server.replica_count == 1
            # Drive a scale event through the server-facing accessor the
            # policy uses; the autoscaler itself sees no load here.
            assert server.scale_replicas(2) == 2
            assert server.replica_count == 2
            served = server.forecast(test)
            assert np.allclose(served, expected, atol=1e-12)
            snap = server.snapshot()
        assert snap["live_replicas"] == 2
        assert snap["autoscaler"]["config"]["max_replicas"] == 3
        assert snap["autoscaler"]["events"] == []  # no load, no events
        assert not multiprocessing.active_children()

    def test_scale_replicas_without_a_pool_raises(self, tiny_data,
                                                  tiny_model):
        with ForecastServer(tiny_model, ServeConfig(max_wait_ms=0.5),
                            template=tiny_data.test) as server:
            assert server.replica_count == 0
            with pytest.raises(RuntimeError, match="replica pool"):
                server.scale_replicas(2)
