"""MicroBatcher: coalescing, splitting, ordering, failure delivery."""

import threading

import numpy as np
import pytest

from repro.data import SampleBatch
from repro.serve import MicroBatcher

SHAPE = (2, 2, 2)


def make_request(values):
    """A SampleBatch whose target rows carry recognisable per-sample values."""
    values = np.asarray(values, dtype=float)
    n = len(values)
    target = np.zeros((n,) + SHAPE)
    target += values[:, None, None, None]
    fill = np.zeros((n, 3) + SHAPE)
    return SampleBatch(closeness=fill, period=fill.copy(), trend=fill.copy(),
                       target=target, indices=np.arange(n))


def echo_forward(batch):
    """Identity on the target field: row i of the answer is sample i."""
    return batch.target.copy()


class RecordingForward:
    def __init__(self, result=echo_forward, gate=None):
        self.sizes = []
        self._result = result
        self._gate = gate

    def __call__(self, batch):
        if self._gate is not None:
            self._gate.wait(timeout=10.0)
        self.sizes.append(len(batch))
        return self._result(batch)


class TestMicroBatcher:
    def test_concurrent_requests_coalesce_into_one_forward(self):
        # Hold the forward on a gate until all requests are queued, so
        # the consumer's first window provably sees every request.
        gate = threading.Event()
        forward = RecordingForward(gate=gate)
        with MicroBatcher(forward, max_batch=8, max_wait_ms=200.0) as batcher:
            futures = [batcher.submit(make_request([i])) for i in range(4)]
            gate.set()
            results = [f.result(timeout=10.0) for f in futures]
        assert forward.sizes[0] >= 1 and sum(forward.sizes) == 4
        for i, rows in enumerate(results):
            assert rows.shape == (1,) + SHAPE
            assert np.array_equal(rows, make_request([i]).target)

    def test_rows_split_back_per_request_in_arrival_order(self):
        gate = threading.Event()
        forward = RecordingForward(gate=gate)
        with MicroBatcher(forward, max_batch=16, max_wait_ms=200.0) as batcher:
            sizes = (2, 3, 1)
            values = [[10, 11], [20, 21, 22], [30]]
            futures = [batcher.submit(make_request(v)) for v in values]
            gate.set()
            results = [f.result(timeout=10.0) for f in futures]
        for size, value, rows in zip(sizes, values, results):
            assert rows.shape == (size,) + SHAPE
            assert np.array_equal(rows, make_request(value).target)

    def test_max_batch_caps_the_window(self):
        # 3 x 2-sample requests against max_batch=4: the third request
        # must be deferred to a second forward, never truncated.
        gate = threading.Event()
        forward = RecordingForward(gate=gate)
        with MicroBatcher(forward, max_batch=4, max_wait_ms=200.0) as batcher:
            futures = [batcher.submit(make_request([10 * i, 10 * i + 1]))
                       for i in range(3)]
            gate.set()
            for f in futures:
                assert f.result(timeout=10.0).shape == (2,) + SHAPE
        assert sum(forward.sizes) == 6
        assert all(size <= 4 for size in forward.sizes)

    def test_oversized_request_served_alone(self):
        forward = RecordingForward()
        with MicroBatcher(forward, max_batch=2, max_wait_ms=50.0) as batcher:
            rows = batcher.submit(
                make_request([1, 2, 3, 4, 5])).result(timeout=10.0)
        # Never split across forwards: one generation answers all of it.
        assert forward.sizes == [5]
        assert np.array_equal(rows, make_request([1, 2, 3, 4, 5]).target)

    def test_forward_failure_delivered_to_every_future_in_batch(self):
        gate = threading.Event()

        def explode(batch):
            raise RuntimeError("forward blew up")

        forward = RecordingForward(result=None, gate=gate)
        forward._result = explode
        with MicroBatcher(lambda b: forward(b), max_batch=8,
                          max_wait_ms=200.0) as batcher:
            futures = [batcher.submit(make_request([i])) for i in range(3)]
            gate.set()
            for f in futures:
                with pytest.raises(RuntimeError, match="forward blew up"):
                    f.result(timeout=10.0)

    def test_row_count_mismatch_is_an_error_not_a_wrong_answer(self):
        with MicroBatcher(lambda batch: batch.target[:-1],
                          max_batch=4, max_wait_ms=0.0) as batcher:
            future = batcher.submit(make_request([1, 2]))
            with pytest.raises(RuntimeError, match="rows"):
                future.result(timeout=10.0)

    def test_close_drains_queued_requests(self):
        forward = RecordingForward()
        batcher = MicroBatcher(forward, max_batch=4, max_wait_ms=0.0)
        futures = [batcher.submit(make_request([i])) for i in range(5)]
        batcher.close()
        for f in futures:
            assert f.result(timeout=10.0).shape == (1,) + SHAPE

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(echo_forward)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(make_request([1]))

    def test_empty_request_rejected(self):
        with MicroBatcher(echo_forward) as batcher:
            with pytest.raises(ValueError, match="empty"):
                batcher.submit(make_request([]))

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(echo_forward, max_batch=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            MicroBatcher(echo_forward, max_wait_ms=-1.0)

    def test_on_batch_telemetry(self):
        seen = []

        def on_batch(requests, samples, forward_s, waits, latencies):
            seen.append((requests, samples, forward_s, waits, latencies))

        gate = threading.Event()
        forward = RecordingForward(gate=gate)
        with MicroBatcher(forward, max_batch=8, max_wait_ms=200.0,
                          on_batch=on_batch) as batcher:
            futures = [batcher.submit(make_request([i, i])) for i in range(2)]
            gate.set()
            for f in futures:
                f.result(timeout=10.0)
        assert sum(r for r, *_ in seen) == 2
        assert sum(s for _, s, *_ in seen) == 4
        for requests, samples, forward_s, waits, latencies in seen:
            assert forward_s >= 0
            assert len(waits) == len(latencies) == requests
            assert all(lat >= wait >= 0
                       for wait, lat in zip(waits, latencies))


class TestShutdownAudit:
    """No future returned by submit() may ever be left unresolved.

    The seeded bug (pre-fix): submit() checked _closed and enqueued
    without a lock, so a submit preempted between the check and the
    put could land its request *behind* close()'s shutdown sentinel —
    the consumer exited at the sentinel and the future stayed pending
    forever.  submit/close now order through a lock and the consumer
    drains past the sentinel, with a post-join sweep as backstop.
    """

    def test_request_behind_the_sentinel_is_still_resolved(self):
        from repro.serve.batcher import _Request

        gate = threading.Event()
        forward = RecordingForward(gate=gate)
        batcher = MicroBatcher(forward, max_batch=4, max_wait_ms=0.0)
        first = batcher.submit(make_request([1]))
        # Wait until the consumer owns the first window (blocked in the
        # gated forward), so nothing is draining the queue.
        deadline = 10.0
        while not forward.sizes and deadline > 0:
            if gate.wait(0):  # pragma: no cover - never set yet
                break
            threading.Event().wait(0.005)
            deadline -= 0.005
        closer = threading.Thread(target=batcher.close,
                                  name="closer", daemon=True)
        closer.start()
        # Reproduce the preempted-submit interleaving deterministically:
        # a request enqueued after close()'s sentinel, exactly what the
        # unlocked submit() path used to allow.
        raced = _Request(make_request([7]))
        batcher._queue.put(raced)
        gate.set()
        closer.join(timeout=10.0)
        assert not closer.is_alive()
        assert first.result(timeout=10.0).shape == (1,) + SHAPE
        # The raced future must be *resolved* — served (the consumer
        # drains past the sentinel) or failed explicitly — never
        # pending forever as before the fix.
        assert raced.future.done()
        if raced.future.exception() is None:
            assert np.array_equal(raced.future.result(),
                                  make_request([7]).target)

    def test_submit_racing_close_never_strands_a_future(self):
        # Many submitters race one close(); every future that submit()
        # returned resolves promptly — with rows or with the explicit
        # "batcher is closed" error — and none hangs.
        for seed in range(3):
            forward = RecordingForward()
            batcher = MicroBatcher(forward, max_batch=8, max_wait_ms=0.5)
            futures, errors = [], []
            start = threading.Barrier(5)

            def submitter(rank):
                start.wait(timeout=10.0)
                for i in range(10):
                    try:
                        futures.append(
                            batcher.submit(make_request([rank * 100 + i])))
                    except RuntimeError as exc:
                        errors.append(str(exc))

            threads = [threading.Thread(target=submitter, args=(rank,),
                                        name=f"submit-{rank}", daemon=True)
                       for rank in range(4)]
            for thread in threads:
                thread.start()
            start.wait(timeout=10.0)
            batcher.close()
            for thread in threads:
                thread.join(timeout=10.0)
                assert not thread.is_alive()
            for future in futures:
                exc = future.exception(timeout=10.0)  # resolved, somehow
                assert exc is None or isinstance(exc, RuntimeError)
            assert all("closed" in message for message in errors)
