"""ForecastCache: memoization, single-flight, invalidation, generations."""

import threading

import numpy as np
import pytest

from repro.optim import Adam
from repro.serve import ForecastCache, ForecastServer, ServeConfig
from repro.training import save_checkpoint

from tests.serve.conftest import TinyForecaster


class CountingForecaster(TinyForecaster):
    """TinyForecaster that counts predict() calls (batcher thread only)."""

    def __init__(self, data, seed=0):
        super().__init__(data, seed=seed)
        self.forwards = 0

    def predict(self, batch):
        self.forwards += 1
        return super().predict(batch)


def streaming_server(model, data, **config):
    """Started streaming server with a warmed window; caller closes."""
    flows = data.scaler.transform(data.dataset.flows)
    server = ForecastServer(
        model, ServeConfig(max_wait_ms=0.5, **config),
        periodicity=data.periodicity, frame_shape=flows.shape[1:])
    server.start()
    for frame in flows[:data.periodicity.min_index]:
        server.cache.push(frame)
    return server, flows


class TestForecastCacheUnit:
    def test_owner_then_hit(self):
        cache = ForecastCache(capacity=4)
        kind, future = cache.lookup(("k", 0))
        assert kind == "owner"
        value = cache.complete(("k", 0), np.arange(4.0))
        assert future.result(timeout=5) is value
        assert not value.flags.writeable
        kind, got = cache.lookup(("k", 0))
        assert kind == "hit" and got is value

    def test_join_receives_the_owners_result(self):
        cache = ForecastCache()
        _kind, _future = cache.lookup(("k", 0))
        kind, joined = cache.lookup(("k", 0))
        assert kind == "join"
        value = cache.complete(("k", 0), np.ones(3))
        assert joined.result(timeout=5) is value

    def test_store_false_resolves_but_does_not_memoize(self):
        cache = ForecastCache()
        _kind, _future = cache.lookup(("k", 0))
        kind, joined = cache.lookup(("k", 0))
        value = cache.complete(("k", 0), np.ones(3), store=False)
        assert joined.result(timeout=5) is value
        assert len(cache) == 0
        kind, _token = cache.lookup(("k", 0))
        assert kind == "owner"  # nothing memoized: next request recomputes

    def test_fail_delivers_the_exception_to_joiners(self):
        cache = ForecastCache()
        cache.lookup(("k", 0))
        _kind, joined = cache.lookup(("k", 0))
        cache.fail(("k", 0), RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            joined.result(timeout=5)
        kind, _token = cache.lookup(("k", 0))
        assert kind == "owner"  # failures are not memoized

    def test_invalidate_drops_completed_keeps_inflight(self):
        cache = ForecastCache()
        cache.lookup(("done", 0))
        cache.complete(("done", 0), np.zeros(2))
        _kind, inflight = cache.lookup(("pending", 0))
        assert cache.invalidate("tick") == 1
        assert len(cache) == 0
        value = cache.complete(("pending", 0), np.ones(2))
        assert inflight.result(timeout=5) is value

    def test_lru_eviction_respects_capacity(self):
        cache = ForecastCache(capacity=2)
        for i in range(3):
            cache.lookup(("k", i))
            cache.complete(("k", i), np.full(2, float(i)))
        assert len(cache) == 2
        kind, _token = cache.lookup(("k", 0))
        assert kind == "owner"  # oldest entry was evicted
        assert cache.snapshot()["evictions"] == 1

    def test_snapshot_counters(self):
        cache = ForecastCache()
        cache.lookup(("k", 0))           # miss
        cache.lookup(("k", 0))           # coalesced
        cache.complete(("k", 0), np.zeros(1))
        cache.lookup(("k", 0))           # hit
        snap = cache.snapshot()
        assert snap["misses"] == 1
        assert snap["coalesced"] == 1
        assert snap["hits"] == 1
        assert snap["entries"] == 1 and snap["inflight"] == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            ForecastCache(capacity=0)
        with pytest.raises(ValueError, match="result_cache"):
            ServeConfig(result_cache=-1)


class TestServerResultCache:
    def test_hit_is_bit_identical_to_recompute(self, tiny_data):
        cached_model = TinyForecaster(tiny_data)
        server, _flows = streaming_server(cached_model, tiny_data)
        try:
            first, index, generation = server.forecast_tick()
            again, index2, _gen = server.forecast_tick()
            assert again is first and index2 == index
            assert not first.flags.writeable
        finally:
            server.close()
        # Uncached recompute on a fresh server: identical bits.
        plain, _f = streaming_server(TinyForecaster(tiny_data), tiny_data,
                                     result_cache=0)
        try:
            fresh, fresh_index, _gen = plain.forecast_tick()
            assert plain.results is None
        finally:
            plain.close()
        assert fresh_index == index
        assert np.array_equal(fresh, first)

    def test_push_tick_invalidates(self, tiny_data):
        server, flows = streaming_server(TinyForecaster(tiny_data), tiny_data)
        try:
            _pred, index, _gen = server.forecast_tick()
            assert len(server.results) == 1
            server.push_tick(flows[index])
            assert len(server.results) == 0
            _pred2, index2, _gen = server.forecast_tick()
            assert index2 == index + 1
        finally:
            server.close()

    def test_push_gap_invalidates(self, tiny_data):
        server, _flows = streaming_server(TinyForecaster(tiny_data),
                                          tiny_data)
        try:
            _pred, index, _gen = server.forecast_tick()
            assert len(server.results) == 1
            server.push_gap()
            assert len(server.results) == 0
            _pred2, index2, _gen = server.forecast_tick()
            assert index2 == index + 1
        finally:
            server.close()

    def test_hot_swap_invalidates_and_stale_generation_never_served(
            self, tiny_data, tmp_path):
        other = TinyForecaster(tiny_data, seed=9)
        path = str(tmp_path / "swap.npz")
        save_checkpoint(path, other, Adam(other.parameters(), lr=1e-3))
        server, _flows = streaming_server(TinyForecaster(tiny_data),
                                          tiny_data)
        try:
            old_pred, index, old_gen = server.forecast_tick()
            assert old_gen == 0 and len(server.results) == 1
            server.load_checkpoint(path)
            assert len(server.results) == 0  # swap dropped the memo
            new_pred, index2, new_gen = server.forecast_tick()
            assert index2 == index and new_gen == 1
            # Same tick, new weights: the cache must NOT have replayed
            # the generation-0 artifact.
            assert not np.allclose(new_pred, old_pred)
            reference = other.predict(server.cache.sample())[0]
            assert np.allclose(new_pred, reference, atol=1e-12)
        finally:
            server.close()

    def test_concurrent_same_tick_requests_cost_one_forward(self, tiny_data):
        model = CountingForecaster(tiny_data)
        server, _flows = streaming_server(model, tiny_data)
        try:
            clients = 12
            barrier = threading.Barrier(clients)
            results = []

            def worker():
                barrier.wait()
                results.append(server.forecast_tick())

            model.forwards = 0
            threads = [threading.Thread(target=worker)
                       for _ in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert model.forwards == 1
            first = results[0][0]
            assert all(r[0] is first for r in results)
            assert all(r[1:] == results[0][1:] for r in results)
            snap = server.results.snapshot()
            assert snap["misses"] == 1
            assert snap["hits"] + snap["coalesced"] == clients - 1
        finally:
            server.close()

    def test_forecast_cell_slices_the_shared_grid(self, tiny_data):
        model = CountingForecaster(tiny_data)
        server, _flows = streaming_server(model, tiny_data)
        try:
            grid, index, generation = server.forecast_tick()
            model.forwards = 0
            for row in range(grid.shape[1]):
                for col in range(grid.shape[2]):
                    values, i, g = server.forecast_cell(row, col)
                    assert i == index and g == generation
                    assert np.array_equal(values, grid[:, row, col])
                    values[...] = -1.0  # returned slice is a private copy
            assert model.forwards == 0  # every cell served from the memo
        finally:
            server.close()

    def test_forecast_next_returns_a_writable_copy(self, tiny_data):
        server, _flows = streaming_server(TinyForecaster(tiny_data),
                                          tiny_data)
        try:
            prediction, _index = server.forecast_next()
            assert prediction.flags.writeable
            shared, _i, _g = server.forecast_tick()
            assert np.array_equal(prediction, shared)
            assert prediction is not shared
        finally:
            server.close()

    def test_profiler_cache_counters(self, tiny_data):
        from repro.profiling import profile

        with profile() as profiler:
            server, _flows = streaming_server(TinyForecaster(tiny_data),
                                              tiny_data)
            try:
                server.forecast_tick()
                server.forecast_tick()
            finally:
                server.close()
        counts = profiler.as_dict()
        assert counts["serve_cache_misses"] == 1
        assert counts["serve_cache_hits"] == 1

    def test_snapshot_reports_the_result_cache(self, tiny_data):
        server, _flows = streaming_server(TinyForecaster(tiny_data),
                                          tiny_data)
        try:
            server.forecast_tick()
            snap = server.snapshot()
        finally:
            server.close()
        assert snap["result_cache"]["entries"] == 1
        assert snap["result_cache"]["misses"] == 1
