"""Inference-only checkpoint loading for serving (no optimizer, no copies)."""

import numpy as np
import pytest

from repro.optim import Adam
from repro.parallel import SharedArrayBlock
from repro.training import (
    CheckpointCorruptError,
    load_checkpoint,
    read_weights,
    save_checkpoint,
)

from tests.serve.conftest import TinyForecaster


@pytest.fixture
def saved(tiny_data, tmp_path):
    model = TinyForecaster(tiny_data, seed=9)
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint(path, model, Adam(model.parameters(), lr=1e-3), epoch=3)
    return path, model.state_dict()


class TestReadWeights:
    def test_returns_exactly_the_model_weights(self, saved):
        path, state = saved
        weights = read_weights(path)
        assert set(weights) == set(state)
        for name, value in state.items():
            assert np.array_equal(weights[name], value)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_weights(str(tmp_path / "nope.npz"))

    def test_corrupt_archive_raises(self, saved, tmp_path):
        path, _ = saved
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0xFF
        bad = tmp_path / "bad.npz"
        bad.write_bytes(bytes(data))
        with pytest.raises(CheckpointCorruptError):
            read_weights(str(bad))


class TestInferenceOnlyLoad:
    def test_load_without_optimizer(self, saved, tiny_data):
        # Seed regression: load_checkpoint demanded an optimizer even
        # for inference-only consumers, and restoring optimizer state
        # was the only way to get weights.
        path, state = saved
        model = TinyForecaster(tiny_data, seed=0)
        history, epoch = load_checkpoint(path, model)
        assert epoch == 3
        for name, value in model.state_dict().items():
            assert np.array_equal(value, state[name])

    def test_load_does_not_rebind_parameter_buffers(self, saved, tiny_data):
        # The serving pool aliases param.data into a shared flat
        # buffer; an inference-only load must write *through* those
        # views (one write into the shared block), never replace them.
        path, state = saved
        model = TinyForecaster(tiny_data, seed=0)
        params = model.parameters()
        block = SharedArrayBlock({
            "params": ((sum(p.size for p in params),), params[0].data.dtype),
        })
        flat = block["params"]
        try:
            cursor = 0
            for p in params:
                view = flat[cursor:cursor + p.size].reshape(p.data.shape)
                view[...] = p.data
                p.data = view
                cursor += p.size
            held = [p.data for p in params]

            load_checkpoint(path, model)

            for p, view in zip(params, held):
                assert p.data is view          # no rebinding
                assert p.data.base is not None  # still the shared block
            # The one write landed in the shared segment itself.
            expected = np.concatenate(
                [state[name].ravel() for name, _ in model.named_parameters()])
            assert np.array_equal(flat, expected)
        finally:
            for p in params:
                if p.data.base is not None:
                    p.data = p.data.copy()
            block.close()
