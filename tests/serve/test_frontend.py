"""Socket front-end: wire framing, op parity, backpressure, drain."""

import contextlib
import socket
import struct

import numpy as np
import pytest

from repro.serve import (ForecastClient, ForecastServer, ServeConfig,
                         SocketFrontend)
from repro.serve import wire
from repro.serve.frontend import RequestError, ServerBusy
from repro.serve.wire import FrameError

from tests.serve.conftest import TinyForecaster


@contextlib.contextmanager
def serving_frontend(data, *, queries="test", address=("127.0.0.1", 0),
                     **frontend_kwargs):
    """Started streaming server + bound front-end; tears both down."""
    flows = data.scaler.transform(data.dataset.flows)
    server = ForecastServer(
        TinyForecaster(data), ServeConfig(max_wait_ms=0.5),
        periodicity=data.periodicity, frame_shape=flows.shape[1:])
    server.start()
    for frame in flows[:data.periodicity.min_index]:
        server.cache.push(frame)
    batch = data.test if queries == "test" else queries
    frontend = SocketFrontend(server, address, queries=batch,
                              **frontend_kwargs)
    try:
        frontend.start()
        yield server, frontend, flows
    finally:
        frontend.close()
        server.close()


class TestWire:
    def test_frame_round_trip_over_a_socketpair(self):
        left, right = socket.socketpair()
        try:
            payload = {"op": "ping", "nested": [1, 2.5, None, "x"]}
            wire.send_frame(left, payload)
            assert wire.recv_frame(right) == payload
            left.close()
            assert wire.recv_frame(right) is None  # clean EOF
        finally:
            left.close()
            right.close()

    @pytest.mark.parametrize("dtype", ["float32", "float64", "int64"])
    def test_array_payload_is_bit_exact(self, dtype):
        rng = np.random.default_rng(3)
        array = (rng.standard_normal((2, 3, 4)) * 1e3).astype(dtype)
        rebuilt = wire.payload_array(wire.array_payload(array))
        assert rebuilt.dtype == array.dtype
        assert rebuilt.shape == array.shape
        assert np.array_equal(rebuilt.view(np.uint8), array.view(np.uint8))

    def test_malformed_array_payload_raises(self):
        with pytest.raises(FrameError, match="malformed array payload"):
            wire.payload_array({"shape": [2], "data": [1.0, 2.0]})

    def test_oversized_outgoing_frame_is_rejected(self):
        with pytest.raises(FrameError, match="exceeds"):
            wire.encode_frame({"blob": "x" * 128}, max_frame_bytes=64)

    def test_oversized_incoming_header_is_rejected_before_allocation(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", 2**31))
            with pytest.raises(FrameError, match="exceeds"):
                wire.recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_truncated_frame_raises(self):
        left, right = socket.socketpair()
        try:
            frame = wire.encode_frame({"op": "ping"})
            left.sendall(frame[:len(frame) - 3])
            left.close()
            with pytest.raises(FrameError, match="closed"):
                wire.recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_parse_and_format_address(self):
        assert wire.parse_address("127.0.0.1:8191") == ("127.0.0.1", 8191)
        assert wire.parse_address("[::1]:80") == ("[::1]", 80)
        assert wire.parse_address("unix:/tmp/fc.sock") == "/tmp/fc.sock"
        assert wire.parse_address(("localhost", "9")) == ("localhost", 9)
        assert wire.format_address(("127.0.0.1", 8191)) == "127.0.0.1:8191"
        assert wire.format_address("/tmp/fc.sock") == "unix:/tmp/fc.sock"
        for bad in ("no-port", ":123", "host:notaport", "unix:"):
            with pytest.raises(ValueError):
                wire.parse_address(bad)

    def test_frontend_rejects_bad_limits(self, tiny_data, tiny_model):
        server = ForecastServer(tiny_model, ServeConfig(max_wait_ms=0.5))
        with pytest.raises(ValueError, match="max_connections"):
            SocketFrontend(server, max_connections=0)
        with pytest.raises(ValueError, match="backlog"):
            SocketFrontend(server, backlog=0)


class TestSocketOps:
    def test_ping_and_ephemeral_port(self, tiny_data):
        with serving_frontend(tiny_data) as (_server, frontend, _flows):
            host, port = frontend.address
            assert host == "127.0.0.1" and port != 0
            with ForecastClient(frontend.address) as client:
                assert client.ping("hello")["pong"] == "hello"

    def test_query_matches_in_process_forecast_bitwise(self, tiny_data):
        with serving_frontend(tiny_data) as (server, frontend, _flows):
            with ForecastClient(frontend.address) as client:
                for i in (0, len(tiny_data.test) - 1):
                    rows = client.query(i)
                    reference = server.forecast(
                        tiny_data.test.slice(i, i + 1))
                    assert np.array_equal(rows, reference)

    def test_query_index_out_of_range(self, tiny_data):
        with serving_frontend(tiny_data) as (_server, frontend, _flows):
            with ForecastClient(frontend.address) as client:
                with pytest.raises(RequestError, match="outside") as info:
                    client.query(len(tiny_data.test))
                assert info.value.code == "bad-request"

    def test_query_without_a_replay_batch(self, tiny_data):
        with serving_frontend(tiny_data, queries=None) as (
                _server, frontend, _flows):
            with ForecastClient(frontend.address) as client:
                with pytest.raises(RequestError) as info:
                    client.query(0)
                assert info.value.code == "no-queries"

    def test_forecast_matches_in_process_bitwise(self, tiny_data):
        with serving_frontend(tiny_data) as (server, frontend, _flows):
            with ForecastClient(frontend.address) as client:
                prediction, index, generation = client.forecast()
                local, local_index, local_gen = server.forecast_tick()
                assert (index, generation) == (local_index, local_gen)
                assert np.array_equal(prediction, local)

    def test_forecast_cells_slice_the_same_grid(self, tiny_data):
        with serving_frontend(tiny_data) as (_server, frontend, _flows):
            with ForecastClient(frontend.address) as client:
                grid, index, _gen = client.forecast()
                cells = [(0, 0), (grid.shape[1] - 1, grid.shape[2] - 1)]
                values, cell_index, _gen = client.forecast(cells=cells)
                assert cell_index == index
                assert values.shape == (len(cells), grid.shape[0])
                for k, (row, col) in enumerate(cells):
                    assert np.array_equal(values[k], grid[:, row, col])

    def test_push_and_push_gap_advance_the_stream(self, tiny_data):
        with serving_frontend(tiny_data) as (server, frontend, flows):
            with ForecastClient(frontend.address) as client:
                _pred, index, _gen = client.forecast()
                count = client.push(flows[index])
                assert count == server.cache.count
                _pred, index2, _gen = client.forecast()
                assert index2 == index + 1
                client.push_gap()
                _pred, index3, _gen = client.forecast()
                assert index3 == index2 + 1

    def test_stats_include_frontend_telemetry(self, tiny_data):
        with serving_frontend(tiny_data) as (_server, frontend, _flows):
            with ForecastClient(frontend.address) as client:
                client.forecast()
                snap = client.stats()
                assert snap["frontend"]["connections"] == 1
                assert snap["frontend"]["requests"] >= 2
                assert snap["frontend"]["address"] == wire.format_address(
                    frontend.address)
                assert snap["result_cache"]["misses"] >= 1

    def test_unknown_op_is_reported_not_fatal(self, tiny_data):
        with serving_frontend(tiny_data) as (_server, frontend, _flows):
            with ForecastClient(frontend.address) as client:
                with pytest.raises(RequestError, match="unknown op") as info:
                    client.request({"op": "explode"})
                assert info.value.code == "unknown-op"
                # The connection survives an unknown op.
                assert client.ping("still-here")["pong"] == "still-here"

    def test_non_object_frame_is_reported(self, tiny_data):
        with serving_frontend(tiny_data) as (_server, frontend, _flows):
            sock = wire.connect(frontend.address)
            try:
                wire.send_frame(sock, ["not", "a", "dict"])
                reply = wire.recv_frame(sock)
                assert reply == {"ok": False, "error": "bad-request",
                                 "message": "frame must be a JSON object"}
            finally:
                sock.close()

    def test_oversized_frame_gets_a_bad_frame_reply(self, tiny_data):
        with serving_frontend(tiny_data) as (_server, frontend, _flows):
            sock = wire.connect(frontend.address)
            try:
                sock.sendall(struct.pack(">I", 2**31))
                reply = wire.recv_frame(sock)
                assert reply["error"] == "bad-frame"
                assert wire.recv_frame(sock) is None  # then a clean close
            finally:
                sock.close()

    def test_busy_backpressure_at_the_connection_limit(self, tiny_data):
        with serving_frontend(tiny_data, max_connections=1) as (
                _server, frontend, _flows):
            with ForecastClient(frontend.address) as first:
                assert first.ping()["ok"]
                second = ForecastClient(frontend.address)
                try:
                    with pytest.raises(ServerBusy, match="retry later"):
                        second.ping()
                finally:
                    second.close()
                assert frontend.telemetry()["rejected_busy"] == 1
                # The admitted connection keeps working.
                assert first.ping("again")["pong"] == "again"

    def test_shutdown_op_signals_wait_for_shutdown(self, tiny_data):
        with serving_frontend(tiny_data) as (_server, frontend, _flows):
            assert not frontend.wait_for_shutdown(timeout=0)
            with ForecastClient(frontend.address) as client:
                reply = client.shutdown()
                assert reply["closing"]
            assert frontend.wait_for_shutdown(timeout=5.0)

    def test_graceful_drain_closes_idle_clients_cleanly(self, tiny_data):
        with serving_frontend(tiny_data) as (_server, frontend, _flows):
            client = ForecastClient(frontend.address)
            try:
                assert client.ping()["ok"]
                frontend.close()
                # The idle connection observes a clean close, never a
                # torn frame: the next request fails loudly.
                with pytest.raises((RequestError, OSError, FrameError)):
                    client.ping()
            finally:
                client.close()

    def test_unix_socket_round_trip(self, tiny_data, tmp_path):
        path = str(tmp_path / "forecast.sock")
        with serving_frontend(tiny_data, address=f"unix:{path}") as (
                server, frontend, _flows):
            assert frontend.address == path
            with ForecastClient(f"unix:{path}") as client:
                rows = client.query(0)
                reference = server.forecast(tiny_data.test.slice(0, 1))
                assert np.array_equal(rows, reference)
        import os
        assert not os.path.exists(path)  # close() unlinked the socket

    def test_double_start_rejected_and_close_is_idempotent(self, tiny_data):
        with serving_frontend(tiny_data) as (_server, frontend, _flows):
            with pytest.raises(RuntimeError, match="already started"):
                frontend.start()
        frontend.close()  # second close is a no-op
