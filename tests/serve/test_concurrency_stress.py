"""Serving races re-run under sanitizer schedule perturbation.

The base suites already assert the *functional* contracts (no torn
generation, no stranded future, clean close).  These re-runs wrap the
same scenarios in ``sanitizer.enabled(stress=True, seed=...)`` at
elevated concurrency: every lock acquisition gets a seeded random
sleep injected in front of it, which widens the race windows by orders
of magnitude while keeping the schedule deterministic per seed.  Each
test asserts the functional contract *and* that the sanitizer's own
detectors (lock-order, fork-safety, long-hold, unjoined-thread) stayed
silent under the perturbed schedule.
"""

import os
import threading

import numpy as np
import pytest

from repro.data import build_samples
from repro.inspect import sanitizer
from repro.optim import Adam
from repro.serve import ForecastServer, ReplicaPool, ServeConfig
from repro.serve.batcher import MicroBatcher
from repro.tensor import no_grad
from repro.training import TrainConfig, Trainer, save_checkpoint

from tests.serve.conftest import TinyForecaster

# These tests open their own sanitizer sessions, which the process-wide
# REPRO_TSAN env session would reject as nested.
pytestmark = pytest.mark.skipif(
    bool(os.environ.get("REPRO_TSAN")),
    reason="stress re-runs open their own sanitizer sessions")


def offline_reference(model, batch):
    return Trainer(model, TrainConfig(eval_batch_size=4)).predict_scaled(batch)


def _checkpoint(model, path):
    save_checkpoint(str(path), model, Adam(model.parameters(), lr=1e-3))
    return str(path)


class TestSwapUnderFireStressed:
    def test_hot_swap_under_perturbed_schedule(self, tiny_data, tmp_path):
        # The TestHotSwap torn-state test at elevated concurrency (6
        # clients vs 3) with stress sleeps in front of every lock
        # acquisition — the server is built *inside* the session so its
        # locks and consumer thread are the instrumented kind.
        test = tiny_data.test
        model = TinyForecaster(tiny_data, seed=0)
        model_a = TinyForecaster(tiny_data, seed=0)
        model_b = TinyForecaster(tiny_data, seed=9)
        out_a = offline_reference(model_a, test.slice(0, 1))
        out_b = offline_reference(model_b, test.slice(0, 1))
        path_a = _checkpoint(model_a, tmp_path / "a.npz")
        path_b = _checkpoint(model_b, tmp_path / "b.npz")

        with sanitizer.enabled(stress=True, seed=1234,
                               max_sleep_ms=0.5) as session:
            config = ServeConfig(max_batch=4, max_wait_ms=0.5)
            with ForecastServer(model, config) as server:
                server.load_checkpoint(path_a)
                stop = threading.Event()
                torn = []

                def client():
                    while not stop.is_set():
                        got = server.forecast(test.slice(0, 1))
                        if not (np.allclose(got, out_a, atol=1e-9)
                                or np.allclose(got, out_b, atol=1e-9)):
                            torn.append(got)
                            return

                threads = [threading.Thread(target=client,
                                            name=f"stress-client-{i}")
                           for i in range(6)]
                for t in threads:
                    t.start()
                for _ in range(8):
                    server.load_checkpoint(path_b)
                    server.load_checkpoint(path_a)
                stop.set()
                for t in threads:
                    t.join(timeout=30.0)
                    assert not t.is_alive()
        assert not torn, "a response matched neither checkpoint generation"
        assert not session.findings, session.format_text()
        # The perturbation actually exercised the instrumented locks.
        assert session.report()["acquisitions"] > 0


class TestBatcherCloseStressed:
    def test_submit_racing_close_under_perturbed_schedule(self, tiny_data):
        # The shutdown-audit contract under stress: with sleeps injected
        # before every lock acquisition the submit/close race window is
        # wide open, and still every accepted future must resolve and
        # every rejected submit must raise cleanly.
        test = tiny_data.test

        def forward(batch):
            return np.zeros((len(batch), 1))

        for seed in (11, 22):
            with sanitizer.enabled(stress=True, seed=seed,
                                   max_sleep_ms=0.5) as session:
                batcher = MicroBatcher(forward, max_batch=4, max_wait_ms=0.2)
                barrier = threading.Barrier(4)
                futures, errors = [], []
                futures_lock = threading.Lock()

                def submitter():
                    barrier.wait(timeout=10.0)
                    for _ in range(8):
                        try:
                            f = batcher.submit(test.slice(0, 1))
                        except RuntimeError as exc:
                            errors.append(exc)
                        else:
                            with futures_lock:
                                futures.append(f)

                def closer():
                    barrier.wait(timeout=10.0)
                    batcher.close()

                threads = [threading.Thread(target=submitter,
                                            name=f"submit-{i}")
                           for i in range(3)]
                threads.append(threading.Thread(target=closer, name="close"))
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=30.0)
                    assert not t.is_alive()
                batcher.close()
                for f in futures:
                    exc = f.exception(timeout=10.0)
                    assert exc is None or isinstance(exc, RuntimeError)
                assert all("closed" in str(e) for e in errors)
            assert not session.findings, session.format_text()


class TestSingleFlightStressed:
    def test_single_flight_under_perturbed_schedule(self, tiny_data):
        # The result cache's exactly-one-forward contract with stress
        # sleeps in front of every lock acquisition: the owner/join
        # decision is atomic under the cache lock, so even a maximally
        # perturbed schedule must produce ONE model forward and hand
        # every concurrent caller the same frozen artifact.
        flows = tiny_data.scaler.transform(tiny_data.dataset.flows)
        model = TinyForecaster(tiny_data)
        forwards = []
        real_predict = model.predict
        model.predict = lambda batch: (forwards.append(1),
                                       real_predict(batch))[1]

        with sanitizer.enabled(stress=True, seed=77,
                               max_sleep_ms=0.5) as session:
            config = ServeConfig(max_wait_ms=0.5)
            server = ForecastServer(
                model, config, periodicity=tiny_data.periodicity,
                frame_shape=flows.shape[1:])
            server.start()
            try:
                for frame in flows[:tiny_data.periodicity.min_index]:
                    server.cache.push(frame)
                clients = 8
                barrier = threading.Barrier(clients)
                results = []
                results_lock = threading.Lock()

                def client():
                    barrier.wait(timeout=10.0)
                    got = server.forecast_tick()
                    with results_lock:
                        results.append(got)

                forwards.clear()
                threads = [threading.Thread(target=client,
                                            name=f"flight-{i}")
                           for i in range(clients)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=30.0)
                    assert not t.is_alive()
            finally:
                server.close()
        assert len(forwards) == 1, "single-flight dedup failed under stress"
        first = results[0][0]
        assert all(r[0] is first for r in results)
        assert all(r[1:] == results[0][1:] for r in results)
        assert not session.findings, session.format_text()
        assert session.report()["acquisitions"] > 0

    def test_forecast_racing_ticks_never_serves_a_torn_artifact(
            self, tiny_data):
        # Pushes invalidate the cache while clients forecast: every
        # response must be the correct forecast FOR ITS OWN index (the
        # key-immutability protocol), or the explicit mid-request
        # advance error — never a stale index's rows under a new key.
        p = tiny_data.periodicity
        flows = tiny_data.scaler.transform(tiny_data.dataset.flows)
        model = TinyForecaster(tiny_data)

        with sanitizer.enabled(stress=True, seed=4242,
                               max_sleep_ms=0.5) as session:
            server = ForecastServer(
                model, ServeConfig(max_wait_ms=0.5), periodicity=p,
                frame_shape=flows.shape[1:])
            server.start()
            try:
                for frame in flows[:p.min_index]:
                    server.cache.push(frame)
                stop = threading.Event()
                outcomes = []
                outcomes_lock = threading.Lock()

                def client():
                    while not stop.is_set():
                        try:
                            pred, index, _gen = server.forecast_tick()
                        except RuntimeError as exc:
                            with outcomes_lock:
                                outcomes.append(("advanced", str(exc)))
                        else:
                            with outcomes_lock:
                                outcomes.append(("ok", (pred, index)))

                threads = [threading.Thread(target=client,
                                            name=f"racer-{i}")
                           for i in range(4)]
                for t in threads:
                    t.start()
                last = min(p.min_index + 6, len(flows))
                for frame in flows[p.min_index:last]:
                    server.push_tick(frame)
                stop.set()
                for t in threads:
                    t.join(timeout=30.0)
                    assert not t.is_alive()
            finally:
                server.close()
        assert any(kind == "ok" for kind, _ in outcomes)
        for kind, payload in outcomes:
            if kind == "ok":
                pred, index = payload
                reference = model.predict(build_samples(flows, p, [index]))
                assert np.allclose(pred, reference[0], atol=1e-12), \
                    f"tick {index} served rows from another tick"
            else:
                assert "advanced past tick" in payload
        assert not session.findings, session.format_text()


class TestPoolCloseStressed:
    def test_close_during_predict_fails_cleanly(self, tiny_data):
        # Concurrent predicts racing close() must either complete or
        # raise the pool's own RuntimeError — never a pipe/OS error from
        # half-closed connections, which is what the unlocked seed
        # teardown could produce.
        test = tiny_data.test
        model = TinyForecaster(tiny_data, seed=0)
        with sanitizer.enabled(stress=True, seed=7,
                               max_sleep_ms=0.5) as session:
            pool = ReplicaPool(model, test, replicas=2, max_batch=8).start()
            barrier = threading.Barrier(4)
            outcomes = []
            outcomes_lock = threading.Lock()

            def client():
                barrier.wait(timeout=10.0)
                for _ in range(6):
                    try:
                        rows, _ = pool.predict(test.slice(0, 4))
                    except RuntimeError as exc:
                        with outcomes_lock:
                            outcomes.append(("closed", str(exc)))
                    else:
                        with outcomes_lock:
                            outcomes.append(("ok", rows))

            def closer():
                barrier.wait(timeout=10.0)
                pool.close()

            threads = [threading.Thread(target=client, name=f"client-{i}")
                       for i in range(3)]
            threads.append(threading.Thread(target=closer, name="closer"))
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
                assert not t.is_alive()
            pool.close()
        with no_grad():
            expected = np.asarray(
                TinyForecaster(tiny_data, seed=0).predict(test.slice(0, 4)))
        for kind, payload in outcomes:
            if kind == "ok":
                assert np.allclose(payload, expected, atol=1e-9)
            else:
                assert "not running" in payload
        assert not session.findings, session.format_text()
