"""Fixtures for the serving suite: tiny data + a deterministic model."""

import numpy as np
import pytest

from repro.data import load_dataset, prepare_forecast_data
from repro.nn import Linear, Module
from repro.tensor import Tensor


class TinyForecaster(Module):
    """Deterministic protocol model: a linear map over the closeness window.

    Serving tests need exact equality between interleavings, so the
    model must be a pure function of its inputs and weights (MUSE-Net
    qualifies in eval mode, but costs far more per forward).
    """

    def __init__(self, data, seed=0):
        super().__init__()
        _n, length, channels, height, width = data.test.closeness.shape
        self._shape = (channels, height, width)
        self.linear = Linear(length * channels * height * width,
                             channels * height * width,
                             rng=np.random.default_rng(seed))

    def predict(self, batch):
        flat = Tensor(np.ascontiguousarray(batch.closeness)
                      .reshape(len(batch), -1))
        return self.linear(flat).data.reshape((len(batch),) + self._shape)


@pytest.fixture(scope="session")
def tiny_data():
    """Tiny prepared dataset with a 13-sample test split (odd on purpose:
    13 never divides evenly into the batching windows under test)."""
    dataset = load_dataset("nyc-bike", scale="tiny")
    return prepare_forecast_data(dataset, max_train_samples=16,
                                 max_test_samples=13)


@pytest.fixture
def tiny_model(tiny_data):
    return TinyForecaster(tiny_data)
