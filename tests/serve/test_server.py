"""ForecastServer: equivalence, hot swap, streaming, telemetry."""

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.data import build_samples
from repro.optim import Adam
from repro.serve import ForecastServer, ServeConfig
from repro.training import TrainConfig, Trainer, save_checkpoint

from tests.serve.conftest import TinyForecaster


def offline_reference(model, batch):
    """The offline evaluation path the serving contract is pinned to."""
    return Trainer(model, TrainConfig(eval_batch_size=4)).predict_scaled(batch)


class TestServedEqualsOffline:
    def test_concurrent_single_sample_requests(self, tiny_model, tiny_data):
        test = tiny_data.test
        offline = offline_reference(tiny_model, test)
        config = ServeConfig(max_batch=5, max_wait_ms=5.0)
        with ForecastServer(tiny_model, config) as server:
            with ThreadPoolExecutor(max_workers=6) as clients:
                rows = list(clients.map(
                    server.forecast,
                    [test.slice(i, i + 1) for i in range(len(test))]))
        served = np.concatenate(rows, axis=0)
        assert np.allclose(served, offline, atol=1e-12)

    def test_mixed_size_interleaving(self, tiny_model, tiny_data):
        # Request sizes 1/3/2/5/2 against max_batch=4: windows coalesce,
        # split, defer, and serve one oversized request — every row must
        # still match the offline forward for its slice.
        test = tiny_data.test
        offline = offline_reference(tiny_model, test)
        spans, start = [], 0
        for size in (1, 3, 2, 5, 2):
            spans.append((start, start + size))
            start += size
        config = ServeConfig(max_batch=4, max_wait_ms=5.0)
        with ForecastServer(tiny_model, config) as server:
            with ThreadPoolExecutor(max_workers=len(spans)) as clients:
                rows = list(clients.map(
                    lambda span: server.forecast(test.slice(*span)), spans))
        for (lo, hi), got in zip(spans, rows):
            assert np.allclose(got, offline[lo:hi], atol=1e-12)

    def test_forecast_flows_inverts_the_scaler(self, tiny_model, tiny_data):
        test = tiny_data.test
        with ForecastServer(tiny_model, scaler=tiny_data.scaler) as server:
            flows = server.forecast_flows(test.slice(0, 2))
        expected = tiny_data.inverse(offline_reference(tiny_model,
                                                       test.slice(0, 2)))
        assert np.allclose(flows, expected, atol=1e-9)


class TestHotSwap:
    def _checkpoint(self, model, path):
        save_checkpoint(str(path), model, Adam(model.parameters(), lr=1e-3))
        return str(path)

    def test_generation_bumps_exactly_once_per_install(
            self, tiny_model, tiny_data, tmp_path):
        other = TinyForecaster(tiny_data, seed=9)
        path = self._checkpoint(other, tmp_path / "swap.npz")
        with ForecastServer(tiny_model) as server:
            assert server.generation == 0
            assert server.load_checkpoint(path) == 1
            assert server.generation == 1
            assert server.load_checkpoint(path) == 2

    def test_swap_changes_served_forecasts(self, tiny_model, tiny_data,
                                           tmp_path):
        test = tiny_data.test
        other = TinyForecaster(tiny_data, seed=9)
        expected = offline_reference(other, test)
        path = self._checkpoint(other, tmp_path / "swap.npz")
        with ForecastServer(tiny_model) as server:
            before = server.forecast(test)
            server.load_checkpoint(path)
            after = server.forecast(test)
        assert not np.allclose(before, after)
        assert np.allclose(after, expected, atol=1e-12)

    def test_no_request_observes_a_torn_state(self, tiny_model, tiny_data,
                                              tmp_path):
        # Generation-attribution under fire: while client threads hammer
        # the same sample, the main thread repeatedly swaps between two
        # checkpoints.  Every response must equal one of the two pure
        # generations exactly — a half-installed parameter state would
        # produce a third value.
        test = tiny_data.test
        model_a = TinyForecaster(tiny_data, seed=0)
        model_b = TinyForecaster(tiny_data, seed=9)
        out_a = offline_reference(model_a, test.slice(0, 1))
        out_b = offline_reference(model_b, test.slice(0, 1))
        path_a = self._checkpoint(model_a, tmp_path / "a.npz")
        path_b = self._checkpoint(model_b, tmp_path / "b.npz")

        config = ServeConfig(max_batch=4, max_wait_ms=0.5)
        with ForecastServer(tiny_model, config) as server:
            server.load_checkpoint(path_a)
            stop = threading.Event()
            torn = []

            def client():
                # Float tolerance, not bit equality: a coalesced forward
                # may round differently per batch size, but a torn
                # half-installed weight mix lands far from either pure
                # generation (the two seeds differ at O(1)).
                while not stop.is_set():
                    got = server.forecast(test.slice(0, 1))
                    if not (np.allclose(got, out_a, atol=1e-9)
                            or np.allclose(got, out_b, atol=1e-9)):
                        torn.append(got)
                        return

            threads = [threading.Thread(target=client) for _ in range(3)]
            for t in threads:
                t.start()
            for _ in range(10):
                server.load_checkpoint(path_b)
                server.load_checkpoint(path_a)
            stop.set()
            for t in threads:
                t.join(timeout=30.0)
        assert not torn, "a response matched neither checkpoint generation"


class TestStreaming:
    def test_push_tick_forecast_next_matches_offline_assembly(
            self, tiny_model, tiny_data):
        p = tiny_data.periodicity
        flows = tiny_data.scaler.transform(tiny_data.dataset.flows)
        frame_shape = flows.shape[1:]
        ticks = p.min_index + 3
        with ForecastServer(tiny_model, periodicity=p,
                            frame_shape=frame_shape) as server:
            for frame in flows[:ticks]:
                server.push_tick(frame)
            prediction, index = server.forecast_next()
        assert index == ticks
        reference = tiny_model.predict(build_samples(flows, p, [ticks]))
        assert np.allclose(prediction, reference[0], atol=1e-12)

    def test_streaming_without_periodicity_raises(self, tiny_model):
        with ForecastServer(tiny_model) as server:
            with pytest.raises(ValueError, match="periodicity"):
                server.push_tick(np.zeros((2, 2, 2)))
            with pytest.raises(ValueError, match="periodicity"):
                server.forecast_next()


class TestLifecycleAndTelemetry:
    def test_submit_before_start_raises(self, tiny_model, tiny_data):
        server = ForecastServer(tiny_model)
        with pytest.raises(RuntimeError, match="not running"):
            server.submit(tiny_data.test.slice(0, 1))

    def test_replicas_require_template(self, tiny_model):
        with pytest.raises(ValueError, match="template"):
            ForecastServer(tiny_model, ServeConfig(replicas=1))

    def test_snapshot_shape(self, tiny_model, tiny_data):
        test = tiny_data.test
        with ForecastServer(tiny_model,
                            ServeConfig(max_batch=4, max_wait_ms=1.0)) as server:
            with ThreadPoolExecutor(max_workers=4) as clients:
                list(clients.map(server.forecast,
                                 [test.slice(i, i + 1) for i in range(8)]))
            snap = server.snapshot()
        assert snap["requests"] == snap["samples"] == 8
        assert 2 <= snap["batches"] <= 8
        assert snap["queries_per_sec"] > 0
        for key in ("p50", "p99", "max", "mean"):
            assert snap["latency_ms"][key] >= 0
        assert snap["latency_ms"]["p50"] <= snap["latency_ms"]["p99"]
        assert snap["generation"] == 0
        assert snap["max_batch"] == 4

    def test_profiler_serve_counters(self, tiny_model, tiny_data):
        from repro.profiling import profile

        with profile() as profiler:
            with ForecastServer(tiny_model) as server:
                server.forecast(tiny_data.test.slice(0, 3))
        counts = profiler.as_dict()
        assert counts["serve_batches"] == 1
        assert counts["serve_requests"] == 1
        assert counts["serve_batch_s"] > 0

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError, match="max_batch"):
            ServeConfig(max_batch=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            ServeConfig(max_wait_ms=-0.1)
        with pytest.raises(ValueError, match="replicas"):
            ServeConfig(replicas=-1)
