"""LatencyStats: bounded reservoirs, exact aggregates, stable keys."""

import numpy as np

from repro.serve.stats import _RECENT_WINDOW, LatencyStats, _Reservoir


def feed(stats, waits, latencies, batch_requests=None):
    """Record one batch with the given per-request times."""
    n = batch_requests if batch_requests is not None else len(latencies)
    stats.record_batch(n, n, forward_seconds=0.001,
                       queue_waits=waits, latencies=latencies)


class TestReservoir:
    def test_fills_then_stays_bounded(self):
        reservoir = _Reservoir(capacity=32, seed=0)
        for i in range(10_000):
            reservoir.add(float(i))
        assert len(reservoir.values) == 32
        assert reservoir.seen == 10_000
        # Replacement kept samples from across the stream, not just the
        # prefix that filled the reservoir.
        assert max(reservoir.values) >= 32

    def test_identical_streams_yield_identical_reservoirs(self):
        a = _Reservoir(capacity=16, seed=7)
        b = _Reservoir(capacity=16, seed=7)
        for i in range(5_000):
            a.add(float(i))
            b.add(float(i))
        assert a.values == b.values

    def test_short_stream_is_kept_verbatim(self):
        reservoir = _Reservoir(capacity=100, seed=0)
        for i in range(10):
            reservoir.add(float(i))
        assert reservoir.values == [float(i) for i in range(10)]


class TestLatencyStats:
    def test_empty_snapshot_shape(self):
        snap = LatencyStats().snapshot()
        assert snap["requests"] == 0
        assert snap["latency_ms"] is None
        assert snap["queue_wait_ms"] is None
        assert snap["batch_size"] is None

    def test_snapshot_keys_are_stable(self):
        stats = LatencyStats()
        feed(stats, [0.001, 0.002], [0.005, 0.006])
        snap = stats.snapshot()
        assert set(snap) == {"requests", "samples", "batches", "elapsed_s",
                             "queries_per_sec", "latency_ms",
                             "queue_wait_ms", "batch_size", "forward_s"}
        assert set(snap["latency_ms"]) == {"p50", "p99", "max", "mean"}
        assert set(snap["queue_wait_ms"]) == {"p50", "p99"}
        assert set(snap["batch_size"]) == {"mean", "max"}

    def test_aggregates_are_exact_even_past_reservoir_capacity(self):
        stats = LatencyStats(reservoir_capacity=8, seed=0)
        rng = np.random.default_rng(1)
        latencies = rng.uniform(1e-4, 1e-2, size=1000)
        for chunk in np.split(latencies, 50):  # 50 batches of 20
            feed(stats, list(chunk), list(chunk))
        snap = stats.snapshot()
        assert snap["requests"] == 1000
        assert snap["batches"] == 50
        assert snap["batch_size"] == {"mean": 20.0, "max": 20}
        # Mean and max never pass through the sampled reservoirs.
        assert np.isclose(snap["latency_ms"]["mean"],
                          latencies.mean() * 1e3, rtol=1e-12)
        assert np.isclose(snap["latency_ms"]["max"],
                          latencies.max() * 1e3, rtol=1e-12)
        assert np.isclose(snap["forward_s"], 0.001 * 50)

    def test_memory_is_bounded_by_the_reservoirs(self):
        stats = LatencyStats(reservoir_capacity=16, seed=0)
        for _ in range(200):
            feed(stats, [0.001] * 10, [0.002] * 10)
        assert len(stats._latencies.values) == 16
        assert len(stats._queue_waits.values) == 16
        assert len(stats._batch_sizes.values) == 16
        assert len(stats._recent_waits) <= _RECENT_WINDOW

    def test_identical_runs_produce_identical_percentiles(self):
        rng = np.random.default_rng(2)
        stream = rng.uniform(1e-4, 1e-2, size=2000)
        snaps = []
        for _ in range(2):
            stats = LatencyStats(reservoir_capacity=64, seed=3)
            for chunk in np.split(stream, 100):
                feed(stats, list(chunk), list(chunk))
            snaps.append(stats.snapshot())
        assert snaps[0]["latency_ms"] == snaps[1]["latency_ms"]
        assert snaps[0]["queue_wait_ms"] == snaps[1]["queue_wait_ms"]

    def test_recent_queue_wait_tracks_the_trailing_window(self):
        stats = LatencyStats()
        assert stats.recent_queue_wait_ms() is None
        feed(stats, [0.010] * 4, [0.010] * 4)
        assert np.isclose(stats.recent_queue_wait_ms(), 10.0)
        # Flood the window with fast requests: old pressure is forgotten.
        feed(stats, [0.001] * _RECENT_WINDOW, [0.001] * _RECENT_WINDOW)
        assert np.isclose(stats.recent_queue_wait_ms(), 1.0)

    def test_reset_clock_restarts_the_qps_window(self):
        stats = LatencyStats()
        feed(stats, [0.001], [0.001])
        stats.reset_clock()
        snap = stats.snapshot()
        assert snap["elapsed_s"] < 1.0
        assert snap["queries_per_sec"] > 0.0
