"""Air-quality forecasting with MUSE-Net (the paper's future work).

The paper's conclusion proposes applying MUSE-Net beyond traffic once
sensor data is gridded and intercepted into closeness/period/trend.
This example does exactly that for an air-quality scenario: hourly
PM2.5 / NO2 grids with traffic-rhythm emissions, an inversion episode
(level shift), and a smoke event (point shift).

    python examples/air_quality_forecast.py
"""

from repro.core import MuseConfig, MUSENet
from repro.data import air_quality_dataset, prepare_forecast_data
from repro.training import TrainConfig, Trainer


def main():
    dataset = air_quality_dataset(days=28)
    print(dataset.summary())
    data = prepare_forecast_data(
        dataset, test_intervals=5 * dataset.grid.samples_per_day,
        max_train_samples=200, max_test_samples=80,
    )

    config = MuseConfig.for_data(data, rep_channels=8, latent_interactive=16,
                                 res_blocks=1, plus_channels=2,
                                 decoder_hidden=32, gen_weight=0.05)
    trainer = Trainer(MUSENet(config), TrainConfig(epochs=15, lr=2e-3, patience=5))
    history = trainer.fit(data)
    print(f"trained {history.epochs_run} epochs, "
          f"best val RMSE {history.best_val_rmse:.2f}")

    report = trainer.evaluate(data)
    print("PM2.5 channel: RMSE "
          f"{report.outflow_rmse:.2f} MAE {report.outflow_mae:.2f}")
    print("NO2 channel:   RMSE "
          f"{report.inflow_rmse:.2f} MAE {report.inflow_mae:.2f}")


if __name__ == "__main__":
    main()
