"""Profile one MUSE-Net training step.

Shows the two instrumentation layers added by ``repro.profiling``:

1. ``profile()`` — a context manager that records per-op forward and
   backward wall time, call counts, output bytes, and the tape's peak
   byte footprint while it is active.
2. Tape lifecycle — ``backward()`` frees each node's backward closure
   (and the buffers it captures) as soon as gradients are deposited,
   which the profiler's tape counter makes visible.

Run with:  PYTHONPATH=src python examples/profile_training_step.py
"""

import numpy as np

from repro.core import MuseConfig, MUSENet
from repro.data import load_dataset, prepare_forecast_data
from repro.optim import Adam, clip_grad_norm
from repro.profiling import profile
from repro.training import TrainConfig, Trainer


def main():
    dataset = load_dataset("nyc-bike", scale="tiny")
    data = prepare_forecast_data(dataset, max_train_samples=32, max_test_samples=12)
    config = MuseConfig.for_data(
        data, rep_channels=8, latent_interactive=16, res_blocks=1,
        plus_channels=2, decoder_hidden=32,
    )
    model = MUSENet(config)
    optimizer = Adam(model.parameters(), lr=1e-3)
    batch = data.train.take(range(8))
    rng = np.random.default_rng(0)

    # --- profile a single hand-rolled training step -------------------
    with profile() as prof:
        optimizer.zero_grad()
        breakdown, _ = model.training_loss(batch, rng=rng)
        tape_at_peak = prof.tape_bytes
        breakdown.total.backward()  # frees the tape as it goes
        clip_grad_norm(model.parameters(), 5.0)
        optimizer.step()

    print("one training step, per-op:")
    print(prof.summary())
    print(f"tape held {tape_at_peak} bytes after the forward pass; "
          f"{prof.tape_bytes} remain after backward freed it\n")

    # --- or let the trainer collect it for a whole fit ----------------
    trainer = Trainer(model, TrainConfig(epochs=2, lr=1e-3, profile_ops=True))
    history = trainer.fit(data)
    print(history.telemetry_summary())
    print(f"slowest op over the fit: "
          f"{max(history.op_profile['ops'].items(), key=lambda kv: kv[1]['forward_s'] + kv[1]['backward_s'])[0]}")


if __name__ == "__main__":
    main()
