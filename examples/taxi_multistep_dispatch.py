"""Multi-step taxi-demand forecasting for dispatch planning.

Reproduces the paper's multi-step protocol (Table III) as an
application: a dispatcher needs demand forecasts 1-3 intervals ahead.
Each horizon gets its own per-horizon multi-periodic samples (closeness
fixed at the last observed window, period/trend lags aligned to the
target) and its own trained model, exactly as in the paper.  MUSE-Net
is compared against DeepSTN+, its closest CNN baseline.

    python examples/taxi_multistep_dispatch.py
"""

from repro.baselines import BaselineConfig, make_baseline
from repro.core import MuseConfig, MUSENet
from repro.data import load_dataset, prepare_forecast_data
from repro.training import TrainConfig, Trainer


def train_for_horizon(dataset, horizon):
    """Train MUSE-Net and DeepSTN+ for one forecast horizon."""
    data = prepare_forecast_data(dataset, horizon=horizon)
    results = {}

    muse_config = MuseConfig.for_data(data, rep_channels=8, latent_interactive=16,
                                      res_blocks=1, plus_channels=2,
                                      decoder_hidden=32, gen_weight=0.05)
    muse = Trainer(MUSENet(muse_config), TrainConfig(epochs=15, lr=2e-3))
    muse.fit(data)
    results["MUSE-Net"] = muse.evaluate(data)

    baseline_config = BaselineConfig.for_data(data, hidden=16)
    deepstn = Trainer(make_baseline("DeepSTN+", baseline_config),
                      TrainConfig(epochs=15, lr=2e-3))
    deepstn.fit(data)
    results["DeepSTN+"] = deepstn.evaluate(data)
    return results


def main():
    dataset = load_dataset("nyc-taxi", scale="tiny")
    print(dataset.summary())
    interval_minutes = dataset.grid.interval_minutes

    for horizon in (1, 2, 3):
        lead = horizon * interval_minutes
        print(f"\n=== horizon {horizon} ({lead} minutes ahead) ===")
        for method, report in train_for_horizon(dataset, horizon).items():
            print(f"  {method:9s} {report}")


if __name__ == "__main__":
    main()
