"""Bike-share rebalancing from MUSE-Net forecasts.

The paper's Definition 1 motivates grid forecasting with exactly this
use case: "bike-sharing companies can use regions' traffic volumes to
decide how many bikes should be placed in these regions."  This example
trains MUSE-Net on the synthetic NYC-Bike analogue, forecasts the next
interval, and turns the inflow/outflow forecast into a per-region
rebalancing plan (positive = trucks should drop bikes, negative = pick
bikes up).

    python examples/bike_rebalancing.py
"""

import numpy as np

from repro.core import MuseConfig, MUSENet
from repro.data import load_dataset, prepare_forecast_data
from repro.training import TrainConfig, Trainer


def rebalancing_plan(predicted_flows, top_k=5):
    """Net bike deficit per region from one forecast grid.

    ``predicted_flows`` is ``(2, H, W)`` (outflow, inflow).  A region
    about to lose more bikes than it gains needs a drop-off.
    """
    outflow, inflow = predicted_flows
    deficit = outflow - inflow  # bikes leaving minus bikes arriving
    order = np.argsort(deficit.ravel())[::-1]
    height, width = deficit.shape
    plan = []
    for flat in order[:top_k]:
        row, col = divmod(int(flat), width)
        plan.append((row, col, float(deficit[row, col])))
    return plan


def main():
    dataset = load_dataset("nyc-bike", scale="tiny")
    data = prepare_forecast_data(dataset)

    config = MuseConfig.for_data(data, rep_channels=8, latent_interactive=16,
                                 res_blocks=1, plus_channels=2,
                                 decoder_hidden=32, gen_weight=0.05)
    trainer = Trainer(MUSENet(config), TrainConfig(epochs=20, lr=2e-3, patience=6))
    trainer.fit(data)

    # Forecast a morning-peak test interval — when rebalancing matters.
    hours = dataset.grid.hour_of_day(data.test.indices)
    peak_positions = np.flatnonzero((hours >= 7) & (hours < 10))
    position = int(peak_positions[0]) if len(peak_positions) else 0
    forecast = trainer.predict_flows(data, data.test)[position]
    truth = data.inverse(data.test.target)[position]

    interval = int(data.test.indices[position])
    hour = float(dataset.grid.hour_of_day(interval))
    print(f"forecast for interval {interval} ({hour:04.1f}h)")
    print(f"{'region':>8}  {'pred deficit':>12}  {'true deficit':>12}")
    true_deficit = truth[0] - truth[1]
    for row, col, deficit in rebalancing_plan(forecast):
        print(f"  ({row},{col})  {deficit:12.1f}  {true_deficit[row, col]:12.1f}")

    # How good is the plan? Rank correlation between predicted and true
    # deficits across all regions.
    predicted = (forecast[0] - forecast[1]).ravel()
    actual = true_deficit.ravel()
    rank_corr = np.corrcoef(np.argsort(np.argsort(predicted)),
                            np.argsort(np.argsort(actual)))[0, 1]
    print(f"deficit rank correlation across regions: {rank_corr:.2f}")


if __name__ == "__main__":
    main()
