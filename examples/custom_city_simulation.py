"""Build a custom simulated city and study distribution shifts.

Shows the data substrate directly: configure a grid city with your own
population, schedule a stadium event (point shift) and a seasonal
demand drop (level shift), simulate agent trajectories, and verify that
the aggregated inflow/outflow exhibits the shifts the paper motivates
MUSE-Net with.

    python examples/custom_city_simulation.py
"""

import numpy as np

from repro.data import (
    CityConfig,
    GridSpec,
    LevelShift,
    TrafficEvent,
    TrajectorySimulator,
    MultiPeriodicity,
    prepare_forecast_data,
)
from repro.data.datasets import TrafficDataset


def main():
    # A 6x6 city sampled hourly, starting on a Monday.
    grid = GridSpec(height=6, width=6, interval_minutes=60, start_weekday=0)
    days = 28
    num_intervals = grid.intervals_for_days(days)

    stadium = grid.region_index(2, 4)
    config = CityConfig(
        num_agents=1500,
        events=[
            # A match on the second Friday evening: a crowd of 400
            # converges on the stadium cell for 3 hours (point shift).
            TrafficEvent(region=stadium,
                         start_interval=grid.intervals_for_days(11) + 19,
                         duration=3, attendance=400),
        ],
        # Demand drops 40% after day 21 — think school holidays
        # (level shift).
        level_shift=LevelShift(start_interval=grid.intervals_for_days(21),
                               factor=0.6),
    )

    simulator = TrajectorySimulator(grid, config, seed=7)
    flows = simulator.simulate(num_intervals)
    print(f"simulated {num_intervals} intervals on a {grid.height}x{grid.width} grid")
    print(f"mean flow {flows.mean():.2f}, max {flows.max():.0f}")

    # Point shift: the stadium cell's inflow spikes during the event.
    row, col = grid.region_coords(stadium)
    event_start = config.events[0].start_interval
    window = flows[event_start:event_start + 3, 1, row, col]
    typical = flows[:, 1, row, col].mean()
    print(f"stadium inflow during event: {window.max():.0f} "
          f"(typical {typical:.1f}) -> point shift x{window.max() / max(typical, 1e-9):.0f}")

    # Level shift: citywide volume drops after day 21.
    before = flows[:config.level_shift.start_interval].mean()
    after = flows[config.level_shift.start_interval:].mean()
    print(f"citywide mean flow before/after day 21: {before:.2f} / {after:.2f}")

    # The simulation plugs straight into the forecasting pipeline.
    dataset = TrafficDataset(
        name="custom-city", scale="custom", grid=grid, flows=flows,
        periodicity=MultiPeriodicity(3, 2, 2, samples_per_day=grid.samples_per_day),
    )
    data = prepare_forecast_data(dataset, test_intervals=5 * grid.samples_per_day)
    print(f"pipeline: train={len(data.train)} val={len(data.val)} test={len(data.test)} samples")


if __name__ == "__main__":
    main()
