"""Quickstart: train MUSE-Net on a synthetic city and evaluate it.

Runs in about a minute on a laptop CPU:

    python examples/quickstart.py

Steps: simulate a small grid city (trajectories aggregated into
inflow/outflow per the paper's Definition 2), window the flows into
closeness/period/trend sub-series, train MUSE-Net, and report the
paper's metrics on a held-out tail.
"""

from repro.core import MuseConfig, MUSENet
from repro.data import load_dataset, prepare_forecast_data
from repro.training import TrainConfig, Trainer


def main():
    # 1. Data: a synthetic analogue of NYC-Bike at test scale.
    dataset = load_dataset("nyc-bike", scale="tiny")
    print(dataset.summary())
    data = prepare_forecast_data(dataset)
    print(f"samples: train={len(data.train)} val={len(data.val)} test={len(data.test)}")

    # 2. Model: MUSE-Net sized to the dataset (paper defaults are
    #    rep_channels=64, latent_interactive=128; smaller here for CPU).
    config = MuseConfig.for_data(
        data, rep_channels=8, latent_interactive=16,
        res_blocks=1, plus_channels=2, decoder_hidden=32,
        gen_weight=0.05,
    )
    model = MUSENet(config)
    print(f"MUSE-Net with {model.num_parameters():,} parameters")

    # 3. Train with the paper's optimizer (Adam) and early stopping.
    trainer = Trainer(model, TrainConfig(epochs=20, batch_size=8, lr=2e-3,
                                         patience=6, verbose=True))
    history = trainer.fit(data)
    print(f"best val RMSE {history.best_val_rmse:.3f} at epoch {history.best_epoch + 1}")

    # 4. Evaluate in original flow units.
    report = trainer.evaluate(data)
    print("test:", report)


if __name__ == "__main__":
    main()
