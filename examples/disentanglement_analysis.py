"""Inspect what MUSE-Net's disentanglement actually learned.

Trains MUSE-Net with the full (paper-faithful) objective and runs the
paper's three interpretability probes:

- Fig. 5: t-SNE + silhouette — do the exclusive/interactive
  representations separate into clusters while raw sub-series mix?
- Fig. 6: does the interactive representation carry information from
  every sub-series (mostly positive similarity)?
- Fig. 7: is the interactive representation complementary to the
  exclusive ones w.r.t. future flow (negative correlation)?

    python examples/disentanglement_analysis.py
"""

from repro.experiments import run_fig5, run_fig6, run_fig7


def main():
    print("== Fig. 5: cluster separation ==")
    fig5 = run_fig5(profile="ci")
    print(fig5)
    print(f"disentangled clusters separate: {fig5.separation_improved}\n")

    print("== Fig. 6: interactive representation vs sub-series ==")
    fig6 = run_fig6(profile="ci")
    print(fig6)
    print()

    print("== Fig. 7: representations vs future flow ==")
    fig7 = run_fig7(profile="ci")
    print(fig7)
    complementary = fig7.complementarity() < 0
    print(f"interactive complementary to exclusives: {complementary}")


if __name__ == "__main__":
    main()
