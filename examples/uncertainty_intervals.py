"""Forecast intervals: how sure is MUSE-Net about tomorrow's traffic?

Transportation operators need more than point forecasts — scheduling
buffers require knowing how wrong the forecast might be.  This example
wraps a trained MUSE-Net in split conformal prediction (calibrated on
the validation split, finite-sample marginal coverage guarantee) and
checks the empirical coverage on the test tail.

    python examples/uncertainty_intervals.py
"""

import numpy as np

from repro.core import MuseConfig, MUSENet
from repro.data import load_dataset, prepare_forecast_data
from repro.training import (
    ConformalForecaster,
    TrainConfig,
    Trainer,
    interval_coverage,
)


def main():
    dataset = load_dataset("nyc-bike", scale="tiny")
    data = prepare_forecast_data(dataset)

    config = MuseConfig.for_data(data, rep_channels=8, latent_interactive=16,
                                 res_blocks=1, plus_channels=2,
                                 decoder_hidden=32, gen_weight=0.05)
    trainer = Trainer(MUSENet(config), TrainConfig(epochs=20, lr=2e-3, patience=6))
    trainer.fit(data)

    conformal = ConformalForecaster(trainer, data)
    truth = data.inverse(data.test.target)

    print(f"{'alpha':>6}  {'margin':>8}  {'coverage':>8}")
    for alpha in (0.5, 0.2, 0.1, 0.05):
        intervals = conformal.predict_intervals(data.test, alpha=alpha)
        coverage = interval_coverage(intervals, truth)
        print(f"{alpha:6.2f}  {conformal.quantile(alpha):8.2f}  {coverage:8.2%}")

    # Spot-check one busy region at one interval.
    intervals = conformal.predict_intervals(data.test, alpha=0.1)
    busiest = np.unravel_index(truth.sum(axis=0).argmax(), truth.shape[1:])
    channel, row, col = (int(v) for v in busiest)
    name = "outflow" if channel == 0 else "inflow"
    print(f"\nregion ({row},{col}) {name}, first test interval:")
    print(f"  forecast {intervals.prediction[0, channel, row, col]:.1f} "
          f"in [{intervals.lower[0, channel, row, col]:.1f}, "
          f"{intervals.upper[0, channel, row, col]:.1f}], "
          f"truth {truth[0, channel, row, col]:.1f}")


if __name__ == "__main__":
    main()
